package core

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"naplet/internal/fsm"
	"naplet/internal/metrics"
	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/wire"
)

// This file implements the connection migration operations of Sections
// 2.2–3.2 of the paper: the locally issued suspend / resume / close
// transactions and the handlers for the corresponding control messages from
// the peer, including both concurrent-migration protocols (overlapped with
// ACK_WAIT + SUS_RES, non-overlapped with RESUME_WAIT) and the
// local/remote-suspend priority rules for multiple connections.

// reject reason fragments the retry logic keys on.
const (
	reasonUnknownConn = "unknown connection"
	reasonRetry       = "retry later"
	reasonResumeRace  = "resume race lost"
)

// request sends one authenticated control message to the peer controller
// and returns its verified reply.
func (s *Socket) request(ctx context.Context, typ wire.MsgType, build func(m *wire.ControlMsg)) (*wire.ControlReply, error) {
	s.mu.Lock()
	s.sendNonce++
	m := &wire.ControlMsg{
		Type:    typ,
		ConnID:  s.id,
		From:    s.localAgent,
		To:      s.remoteAgent,
		Nonce:   s.sendNonce,
		TraceID: s.traceSpan.Context().Trace,
		SpanID:  s.traceSpan.Context().Span,
	}
	addr := s.peerControlAddr
	s.mu.Unlock()
	if build != nil {
		build(m)
	}
	m.Tag = s.auth.Sign(m.SigningBytes())
	raw, err := s.ctrl.ep.Request(ctx, addr, m.Encode())
	if err != nil {
		return nil, err
	}
	reply, err := wire.DecodeControlReply(raw)
	if err != nil {
		return nil, err
	}
	if !s.auth.Verify(reply.SigningBytes(), reply.Tag) {
		// A controller that does not know the connection (the peer agent
		// moved on, or its endpoint is travelling in a bundle) cannot sign:
		// let unsigned rejections through as advisory — the worst a forger
		// achieves is a retry, never a state change.
		if reply.Verdict == wire.VerdictReject && reply.Tag == [wire.TagSize]byte{} {
			return reply, nil
		}
		return nil, fmt.Errorf("napletsocket: unauthenticated %s reply on %s", typ, s.id)
	}
	return reply, nil
}

// reply builds a signed control reply.
func (s *Socket) reply(v wire.Verdict, mutate func(r *wire.ControlReply)) []byte {
	r := &wire.ControlReply{Verdict: v, ConnID: s.id}
	if mutate != nil {
		mutate(r)
	}
	r.Tag = s.auth.Sign(r.SigningBytes())
	return r.Encode()
}

// checkAuth verifies a peer control message's tag and replay nonce.
func (s *Socket) checkAuth(m *wire.ControlMsg) error {
	if !s.auth.Verify(m.SigningBytes(), m.Tag) {
		return fmt.Errorf("napletsocket: bad tag on %s for %s", m.Type, s.id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Nonce <= s.lastPeerNonce {
		return fmt.Errorf("napletsocket: replayed %s (nonce %d <= %d) on %s", m.Type, m.Nonce, s.lastPeerNonce, s.id)
	}
	s.lastPeerNonce = m.Nonce
	return nil
}

// ---- suspend ----

// Suspend suspends the connection ahead of a local migration (or under
// explicit application control, per the paper's suspend() interface). It
// returns once the connection is safely in SUSPENDED on this side — which,
// under concurrent migration, may mean waiting for the higher-priority
// peer's migration to finish (SUSPEND_WAIT).
func (s *Socket) Suspend() error {
	s.suspendOpMu.Lock()
	defer s.suspendOpMu.Unlock()
	start := time.Now()
	err := s.suspendLocked()
	o := s.ctrl.obs
	if err != nil {
		o.suspendErrors.Inc()
		s.olog(obs.LevelWarn, "suspend failed: %v", err)
		return err
	}
	elapsed := time.Since(start)
	o.suspends.Inc()
	o.suspendMs.ObserveDuration(elapsed)
	s.olog(obs.LevelInfo, "suspended in %v", elapsed.Round(time.Microsecond))
	s.ctrl.checkpointConn(s)
	return nil
}

func (s *Socket) suspendLocked() error {
	opTimeout := s.ctrl.cfg.opTimeout()
	s.mu.Lock()
	switch st := s.m.State(); st {
	case fsm.Established:
		s.step(fsm.AppSuspend) // -> SUS_SENT
		s.mu.Unlock()
		return s.suspendHandshake(opTimeout)

	case fsm.Suspended:
		if !s.remoteSuspended {
			// Already locally suspended (idempotent).
			s.mu.Unlock()
			return nil
		}
		if s.peerResumeParked || s.susResReceived {
			// The peer already parked its resume behind our migration (or
			// released us with SUS_RES): the suspend is satisfied and the
			// peer is pinned until we land.
			s.susResReceived = false
			s.localSuspended = true
			s.mu.Unlock()
			return nil
		}
		// Section 3.2: local suspend on a remotely suspended connection.
		if s.highPriority {
			// Finish without further action; the peer's migration pinned
			// the connection and its RESUME will find us gone — it retries
			// through the location service.
			s.localSuspended = true
			s.mu.Unlock()
			return nil
		}
		// Low priority: park until the peer's RESUME (answered with
		// RESUME_WAIT) or SUS_RES releases us.
		s.step(fsm.AppSuspendBlocked) // -> SUSPEND_WAIT
		s.parkedSuspend = true
		s.mu.Unlock()
		_, err := s.waitState(s.ctrl.cfg.parkTimeout(), fsm.Suspended)
		if err != nil {
			return fmt.Errorf("napletsocket: parked suspend on %s: %w", s.id, err)
		}
		s.mu.Lock()
		s.localSuspended = true
		s.mu.Unlock()
		return nil

	case fsm.SusAcked:
		// A remote suspend is mid-drain; wait for it, then reclassify.
		s.mu.Unlock()
		if _, err := s.waitState(opTimeout, fsm.Suspended); err != nil {
			return err
		}
		return s.suspendLocked()

	case fsm.SuspendWait:
		s.mu.Unlock()
		_, err := s.waitState(s.ctrl.cfg.parkTimeout(), fsm.Suspended)
		return err

	case fsm.ResAcked, fsm.ResSent, fsm.ResumeWait:
		// A resume is in flight — possibly peer-initiated (RES_ACKED does
		// not hold the operation mutex while the handoff lands). Wait for
		// it to settle, then reclassify; dropping the connection here
		// would strand the peer on a live endpoint.
		s.mu.Unlock()
		if _, err := s.waitState(s.ctrl.cfg.parkTimeout(), fsm.Established, fsm.Suspended); err != nil {
			return err
		}
		return s.suspendLocked()

	case fsm.Closed, fsm.CloseSent, fsm.CloseAcked:
		s.mu.Unlock()
		return ErrClosed

	default:
		s.mu.Unlock()
		return fmt.Errorf("napletsocket: cannot suspend %s in state %s", s.id, st)
	}
}

// suspendHandshake runs the SUS exchange from SUS_SENT and completes the
// local teardown per the verdict. Transient rejections (the peer is mid-
// resume or mid-close on another front) are retried within the operation
// timeout.
func (s *Socket) suspendHandshake(opTimeout time.Duration) error {
	deadline := time.Now().Add(s.ctrl.cfg.parkTimeout())
	backoff := 5 * time.Millisecond
retry:
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	hsStart := time.Now()
	reply, err := s.request(ctx, wire.MsgSuspend, func(m *wire.ControlMsg) {
		m.LastSeq = s.delivered()
	})
	s.ctrl.obs.suspendBD.Add(metrics.PhaseHandshaking, time.Since(hsStart))
	if err != nil {
		// Peer unreachable: suspend ungracefully; the send log covers any
		// in-flight loss at resume time.
		s.ctrl.logf("conn %s: SUS undeliverable (%v); suspending ungracefully", s.id, err)
		s.drainTimed()
		s.mu.Lock()
		if s.m.State() == fsm.SusSent {
			s.step(fsm.Timeout) // -> SUSPENDED
		}
		s.localSuspended = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil
	}
	switch reply.Verdict {
	case wire.VerdictAck:
		s.drainTimed()
		s.mu.Lock()
		if s.m.State() == fsm.SusSent {
			s.step(fsm.RecvSuspendAck) // -> SUSPENDED
		}
		s.localSuspended = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil

	case wire.VerdictAckWait:
		// Overlapped concurrent migration, we are the low-priority side:
		// drain now, then park until the peer's SUS_RES (Fig 4(a)). The
		// SUS_RES may already have raced ahead of us — the latch catches it.
		s.drainTimed()
		deadline := time.Now().Add(s.ctrl.cfg.parkTimeout())
		parked := false
		s.mu.Lock()
		for {
			if s.closed {
				s.mu.Unlock()
				return ErrClosed
			}
			// Let a concurrently granted remote suspend finish draining.
			if s.m.State() == fsm.SusAcked {
				if !waitCond(s.cond, time.Until(deadline)) {
					s.mu.Unlock()
					return fmt.Errorf("napletsocket: waiting for SUS_RES on %s: timed out in %s", s.id, s.m.State())
				}
				continue
			}
			if s.susResReceived {
				// The peer's migration already finished.
				s.susResReceived = false
				if s.m.State() == fsm.SusSent {
					s.step(fsm.RecvSuspendAck) // -> SUSPENDED
				}
				if s.m.State() == fsm.SuspendWait {
					s.step(fsm.RecvSusRes) // -> SUSPENDED
				}
				s.parkedSuspend = false
				break
			}
			switch s.m.State() {
			case fsm.SusSent:
				s.step(fsm.RecvAckWait) // -> SUSPEND_WAIT
				s.parkedSuspend = true
				parked = true
			case fsm.Suspended:
				if parked {
					// Released by the peer's SUS_RES or RESUME.
					s.parkedSuspend = false
				} else {
					// The peer's SUS was granted concurrently; park from
					// there.
					s.step(fsm.RecvAckWait) // -> SUSPEND_WAIT
					s.parkedSuspend = true
					parked = true
				}
			case fsm.SuspendWait:
				parked = true // already parked; wait for the release below
			}
			if s.m.State() == fsm.Suspended {
				break
			}
			if !waitCond(s.cond, time.Until(deadline)) {
				s.mu.Unlock()
				return fmt.Errorf("napletsocket: waiting for SUS_RES on %s: timed out in %s", s.id, s.m.State())
			}
		}
		s.localSuspended = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil

	case wire.VerdictReject:
		if strings.Contains(reply.Reason, reasonUnknownConn) {
			// The peer's host does not know the connection — typically the
			// peer agent is itself mid-migration and its endpoint is
			// travelling in a bundle. Suspend ungracefully; our eventual
			// resume chases the peer through the location service, and the
			// send log covers anything lost in flight.
			s.drainTimed()
			s.mu.Lock()
			if s.m.State() == fsm.SusSent {
				s.step(fsm.Timeout) // -> SUSPENDED
			}
			s.localSuspended = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return nil
		}
		if strings.Contains(reply.Reason, reasonRetry) && time.Now().Before(deadline) {
			cancel()
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			goto retry
		}
		return fmt.Errorf("napletsocket: peer rejected suspend on %s: %s", s.id, reply.Reason)

	default:
		return fmt.Errorf("napletsocket: unexpected suspend verdict %s on %s", reply.Verdict, s.id)
	}
}

// delivered returns the receive high-water mark: every frame at or below it
// is safely in our buffer (which migrates with us).
func (s *Socket) delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEnqueued
}

// handleSuspend serves a peer's SUS request (Fig 3, recv:SUS paths).
func (s *Socket) handleSuspend(m *wire.ControlMsg) []byte {
	s.mu.Lock()
	s.trimSendLogLocked(m.LastSeq)
	// A resume completion may still be in flight on our side (the peer
	// reaches ESTABLISHED from its half of the handoff before we step out
	// of RES_SENT/RES_ACKED); let it settle instead of rejecting.
	settleDeadline := time.Now().Add(s.ctrl.cfg.drainTimeout())
	for !s.closed {
		if st := s.m.State(); st != fsm.ResSent && st != fsm.ResAcked {
			break
		}
		if !waitCond(s.cond, time.Until(settleDeadline)) {
			break
		}
	}
	switch st := s.m.State(); st {
	case fsm.Established:
		s.step(fsm.RecvSuspend) // -> SUS_ACKED
		s.remoteSuspended = true
		s.mu.Unlock()
		go func() {
			s.drainAndClose()
			s.mu.Lock()
			if s.m.State() == fsm.SusAcked {
				s.step(fsm.ExecSuspended) // -> SUSPENDED
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			s.ctrl.checkpointConn(s)
		}()
		return s.reply(wire.VerdictAck, func(r *wire.ControlReply) { r.LastSeq = s.delivered() })

	case fsm.SusSent:
		// Overlapped concurrent migration: both sides sent SUS.
		if s.highPriority {
			// Park the peer; we migrate first and owe it a SUS_RES from
			// our new host (Fig 4(a), side B).
			s.owesSusRes = true
			s.mu.Unlock()
			return s.reply(wire.VerdictAckWait, nil)
		}
		// Low priority always grants (Fig 4(a), side A).
		s.step(fsm.RecvSuspend) // -> SUS_ACKED
		s.remoteSuspended = true
		s.mu.Unlock()
		go func() {
			s.drainAndClose()
			s.mu.Lock()
			if s.m.State() == fsm.SusAcked {
				s.step(fsm.ExecSuspended)
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			s.ctrl.checkpointConn(s)
		}()
		return s.reply(wire.VerdictAck, func(r *wire.ControlReply) { r.LastSeq = s.delivered() })

	case fsm.Suspended, fsm.SuspendWait, fsm.SusAcked:
		// Already suspended; granting is idempotent (Section 3.2: "by
		// default a suspend operation needs to do nothing for a suspended
		// connection").
		s.remoteSuspended = true
		s.mu.Unlock()
		return s.reply(wire.VerdictAck, func(r *wire.ControlReply) { r.LastSeq = s.delivered() })

	case fsm.Closed, fsm.CloseSent, fsm.CloseAcked:
		s.mu.Unlock()
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) { r.Reason = reasonUnknownConn })

	default:
		s.mu.Unlock()
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) {
			r.Reason = fmt.Sprintf("%s: cannot suspend in state %s", reasonRetry, st)
		})
	}
}

// ---- SUS_RES ----

// sendSusRes tells the parked low-priority peer that our migration is done
// (Fig 4(a)); sent from the new host with our new addresses. It retries a
// few times: a parked peer is pinned, but its host may be momentarily slow.
func (s *Socket) sendSusRes() error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), s.ctrl.cfg.opTimeout())
		reply, err := s.request(ctx, wire.MsgSusRes, func(m *wire.ControlMsg) {
			m.ControlAddr = s.ctrl.ControlAddr()
			m.DataAddr = s.ctrl.DataAddr()
			m.LocEpoch = s.ctrl.locationEpoch(s.localAgent)
		})
		cancel()
		if err != nil {
			lastErr = err
			time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
			continue
		}
		if reply.Verdict != wire.VerdictAck {
			lastErr = fmt.Errorf("napletsocket: SUS_RES on %s got %s: %s", s.id, reply.Verdict, reply.Reason)
			time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		s.owesSusRes = false
		s.mu.Unlock()
		return nil
	}
	return lastErr
}

// handleSusRes serves the peer's SUS_RES: our parked suspend may complete.
// Because the SUS_RES can arrive at any point of our own suspend (even
// before we parked), every suspend-phase state latches it.
func (s *Socket) handleSusRes(m *wire.ControlMsg) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updatePeerAddrsLocked(m)
	switch st := s.m.State(); st {
	case fsm.SuspendWait:
		s.step(fsm.RecvSusRes) // -> SUSPENDED
		s.parkedSuspend = false
		s.cond.Broadcast()
		return s.reply(wire.VerdictAck, nil)
	case fsm.Suspended, fsm.SusSent, fsm.SusAcked:
		s.susResReceived = true
		s.cond.Broadcast()
		return s.reply(wire.VerdictAck, nil)
	default:
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) {
			r.Reason = fmt.Sprintf("SUS_RES in state %s", st)
		})
	}
}

func (s *Socket) updatePeerAddrsLocked(m *wire.ControlMsg) {
	if m.ControlAddr != "" {
		s.peerControlAddr = m.ControlAddr
	}
	if m.DataAddr != "" {
		s.peerDataAddr = m.DataAddr
	}
}

// ---- resume ----

// Resume re-establishes a suspended connection, typically after the local
// agent lands on a new host. It retries through the location service when
// the peer has itself moved, and parks in RESUME_WAIT when the peer has a
// pending migration of its own (Fig 4(b)).
func (s *Socket) Resume() error {
	s.suspendOpMu.Lock()
	defer s.suspendOpMu.Unlock()
	start := time.Now()
	err := s.resumeLocked()
	o := s.ctrl.obs
	if err != nil {
		o.resumeErrors.Inc()
		s.olog(obs.LevelWarn, "resume failed: %v", err)
		return err
	}
	elapsed := time.Since(start)
	o.resumes.Inc()
	o.resumeMs.ObserveDuration(elapsed)
	s.olog(obs.LevelInfo, "resumed in %v", elapsed.Round(time.Microsecond))
	s.noteRecovered()
	s.ctrl.checkpointConn(s)
	return nil
}

func (s *Socket) resumeLocked() error {
	s.mu.Lock()
	switch st := s.m.State(); st {
	case fsm.Established:
		s.mu.Unlock()
		return nil
	case fsm.ResAcked:
		// A peer-initiated resume is mid-handoff; wait for it.
		s.mu.Unlock()
		_, err := s.waitState(s.ctrl.cfg.opTimeout(), fsm.Established)
		return err
	case fsm.Suspended:
		s.step(fsm.AppResume) // -> RES_SENT
		s.mu.Unlock()
	case fsm.Closed, fsm.CloseSent, fsm.CloseAcked:
		s.mu.Unlock()
		return ErrClosed
	default:
		s.mu.Unlock()
		return fmt.Errorf("napletsocket: cannot resume %s in state %s", s.id, st)
	}

	backoff := 10 * time.Millisecond
	deadline := time.Now().Add(s.ctrl.cfg.parkTimeout())
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		st := s.m.State()
		s.mu.Unlock()
		switch st {
		case fsm.Established:
			return nil
		case fsm.ResAcked:
			_, err := s.waitState(s.ctrl.cfg.opTimeout(), fsm.Established)
			return err
		case fsm.ResSent:
			// proceed below
		default:
			return fmt.Errorf("napletsocket: resume of %s interrupted in state %s", s.id, st)
		}
		done, err := s.resumeAttempt()
		if done || err != nil {
			return err
		}
		if time.Now().After(deadline) {
			// The peer has been unreachable (or unwilling) for the whole
			// park window: declare the connection dead so blocked readers
			// and writers fail instead of waiting forever.
			err := fmt.Errorf("%w: resume of %s timed out; peer unreachable", ErrClosed, s.id)
			s.mu.Lock()
			if s.m.State() == fsm.ResSent {
				s.step(fsm.Timeout) // back to SUSPENDED (terminal here)
			}
			s.markClosedLocked(err)
			s.mu.Unlock()
			s.ctrl.dropConn(s)
			return err
		}
		select {
		case <-s.ctrl.done:
			return ErrClosed
		default:
		}
		// Re-resolve the peer: it may have moved (or not yet landed).
		mgmtStart := time.Now()
		s.relookupPeer()
		s.ctrl.obs.resumeBD.Add(metrics.PhaseManagement, time.Since(mgmtStart))
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// resumeAttempt sends one RES and processes the verdict. done=true means
// the operation concluded (successfully unless err is set); done=false
// asks the caller to retry.
func (s *Socket) resumeAttempt() (done bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.ctrl.cfg.opTimeout())
	defer cancel()
	hsStart := time.Now()
	reply, rerr := s.request(ctx, wire.MsgResume, func(m *wire.ControlMsg) {
		m.ControlAddr = s.ctrl.ControlAddr()
		m.DataAddr = s.ctrl.DataAddr()
		m.LastSeq = s.delivered()
		m.LocEpoch = s.ctrl.locationEpoch(s.localAgent)
	})
	s.ctrl.obs.resumeBD.Add(metrics.PhaseHandshaking, time.Since(hsStart))
	if rerr != nil {
		// Peer host unreachable (mid-migration or failed): retry.
		return false, nil
	}
	switch reply.Verdict {
	case wire.VerdictAck:
		dialStart := time.Now()
		err := s.dialAndInstall(reply.LastSeq)
		s.ctrl.obs.resumeBD.Add(metrics.PhaseOpenSocket, time.Since(dialStart))
		if err != nil {
			s.ctrl.logf("conn %s: resume handoff failed: %v", s.id, err)
			return false, nil
		}
		s.mu.Lock()
		if s.m.State() == fsm.ResSent {
			s.step(fsm.RecvResumeAck) // -> ESTABLISHED
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return true, nil

	case wire.VerdictResumeWait:
		// Non-overlapped concurrent migration: the peer has a parked
		// suspend to finish; our resume parks until the peer's RES reaches
		// us (Fig 4(b), side A).
		s.mu.Lock()
		if s.m.State() == fsm.ResSent {
			s.step(fsm.RecvResumeWait) // -> RESUME_WAIT
		}
		s.mu.Unlock()
		if _, werr := s.waitState(s.ctrl.cfg.parkTimeout(), fsm.Established); werr != nil {
			return true, fmt.Errorf("napletsocket: parked resume on %s: %w", s.id, werr)
		}
		return true, nil

	case wire.VerdictReject:
		switch {
		case strings.Contains(reply.Reason, reasonResumeRace):
			// The higher-priority peer is resuming toward us; its RES will
			// land here and complete the connection.
			if _, werr := s.waitState(s.ctrl.cfg.opTimeout(), fsm.Established); werr == nil {
				return true, nil
			}
			return false, nil
		case strings.Contains(reply.Reason, reasonUnknownConn), strings.Contains(reply.Reason, reasonRetry):
			// The peer agent moved on (or has not landed); re-resolve and
			// chase it through the location service.
			return false, nil
		default:
			return true, fmt.Errorf("napletsocket: peer rejected resume on %s: %s", s.id, reply.Reason)
		}

	default:
		return true, fmt.Errorf("napletsocket: unexpected resume verdict %s on %s", reply.Verdict, s.id)
	}
}

// relookupPeer refreshes the peer's addresses from the location service.
// The resume loop only re-resolves after failing to reach the peer at its
// last known addresses, so the cached entry is evicted first: serving it
// back would pin the chase to the address that just failed.
func (s *Socket) relookupPeer() {
	ctx, cancel := context.WithTimeout(context.Background(), s.ctrl.cfg.opTimeout())
	defer cancel()
	s.ctrl.invalidateLocation(s.remoteAgent)
	rec, err := s.ctrl.lookupAgent(ctx, s.remoteAgent)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.applyLocationLocked(rec.Loc)
	s.mu.Unlock()
}

func (s *Socket) applyLocationLocked(loc naming.Location) {
	if loc.ControlAddr != "" {
		s.peerControlAddr = loc.ControlAddr
	}
	if loc.DataAddr != "" {
		s.peerDataAddr = loc.DataAddr
	}
}

// dialAndInstall opens a replacement data stream on the shared transport
// to the peer's (possibly new) host — reusing a warm transport when one
// exists, which is the common case for migration storms — performs the
// authenticated resume handoff, and installs the new data stream.
func (s *Socket) dialAndInstall(peerHasUpTo uint64) error {
	stream, err := s.openDataStream(wire.HandoffResume)
	if err != nil {
		return err
	}
	return s.installSocket(stream, peerHasUpTo)
}

// handleResume serves a peer's RES request.
func (s *Socket) handleResume(m *wire.ControlMsg) []byte {
	s.mu.Lock()
	s.updatePeerAddrsLocked(m)
	// If a granted suspend is still draining, let it finish rather than
	// bouncing the peer into a retry.
	drainDeadline := time.Now().Add(s.ctrl.cfg.drainTimeout())
	for s.m.State() == fsm.SusAcked && !s.closed {
		if !waitCond(s.cond, time.Until(drainDeadline)) {
			break
		}
	}
	switch st := s.m.State(); st {
	case fsm.Suspended:
		if s.ctrl.isMigrating(s.localAgent) {
			// We are about to migrate ourselves: park the peer's resume
			// (Fig 5, "side A sends back RESUME_WAIT ... because it is to
			// migrate"). The latch also satisfies our own pending suspend
			// of this connection.
			s.peerResumeParked = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return s.reply(wire.VerdictResumeWait, nil)
		}
		s.step(fsm.RecvResume) // -> RES_ACKED
		s.mu.Unlock()
		return s.grantResume(m)

	case fsm.SuspendWait:
		// Our suspend is parked; the peer's RESUME both completes it and
		// is itself parked (Fig 4(b), side B).
		s.step(fsm.RecvResume) // -> SUSPENDED
		s.parkedSuspend = false
		s.peerResumeParked = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return s.reply(wire.VerdictResumeWait, nil)

	case fsm.ResumeWait:
		// Our earlier resume was parked; the peer has migrated and now
		// resumes toward us.
		s.step(fsm.RecvResume) // -> RES_ACKED
		s.mu.Unlock()
		return s.grantResume(m)

	case fsm.ResSent:
		// Both sides resumed at once (e.g. after both migrated, or dueling
		// failure recoveries). The lower-priority side grants; the higher
		// rejects and lets its own RES win.
		if s.highPriority {
			s.mu.Unlock()
			return s.reply(wire.VerdictReject, func(r *wire.ControlReply) { r.Reason = reasonResumeRace })
		}
		s.step(fsm.RecvResume) // -> RES_ACKED
		s.mu.Unlock()
		return s.grantResume(m)

	case fsm.Established:
		// A stale or failure-racing RES; ask the peer to retry — if our
		// socket is really dead our reader will degrade us to SUSPENDED
		// shortly and the retry will be granted. One degradation cannot
		// happen on its own: a stream riding a shared transport that is
		// mid-resume stalls instead of failing. The peer's RES is proof
		// that its end of that session is gone for good (a crashed-and-
		// restarted peer re-handshakes the connection, it never resumes
		// the old transport), so fail the zombie transport now; our stream
		// fails immediately and the peer's retry finds us SUSPENDED.
		tp, hasTransport := s.sock.(interface{ TransportID() wire.ConnID })
		remote := s.remoteAgent
		s.mu.Unlock()
		if hasTransport {
			s.ctrl.tm.FailIfReconnecting(tp.TransportID(),
				fmt.Errorf("peer %s re-established connection %s", remote, s.id))
		}
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) { r.Reason = reasonRetry })

	case fsm.Closed, fsm.CloseSent, fsm.CloseAcked:
		s.mu.Unlock()
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) { r.Reason = reasonUnknownConn })

	default:
		s.mu.Unlock()
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) {
			r.Reason = fmt.Sprintf("%s: state %s", reasonRetry, st)
		})
	}
}

// grantResume arms the redirector rendezvous, acks the RES, and completes
// establishment when the mover's handoff lands. The wait is a rendezvous
// callback with a timer-wheel deadline, not a parked goroutine: a
// migration wave resuming 10k connections arms 10k map entries.
func (s *Socket) grantResume(m *wire.ControlMsg) []byte {
	peerHasUpTo := m.LastSeq
	// The redirect span covers the stationary peer's half of the resume:
	// redirector armed, the mover's handoff socket landing, and the swap to
	// ESTABLISHED. It joins the mover's migration trace via the RES stamp.
	redirect := s.ctrl.obs.tr.StartSpan(
		obs.SpanContext{Trace: obs.TraceID(m.TraceID), Span: obs.SpanID(m.SpanID)}, "redirect")
	s.ctrl.rv.armFunc(connKey{id: s.id, agent: s.localAgent}, s.ctrl.cfg.opTimeout(),
		func(sock net.Conn) {
			defer redirect.End()
			if s.ctrl.closing.Load() {
				sock.Close()
				return
			}
			if err := s.installSocket(sock, peerHasUpTo); err != nil {
				redirect.Annotate("install failed: " + err.Error())
				s.ctrl.logf("conn %s: installing resumed socket: %v", s.id, err)
				s.mu.Lock()
				if s.m.State() == fsm.ResAcked {
					s.step(fsm.Timeout) // back to SUSPENDED
				}
				s.mu.Unlock()
				return
			}
			s.mu.Lock()
			if s.m.State() == fsm.ResAcked {
				s.step(fsm.ExecResumed) // -> ESTABLISHED
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			s.noteRecovered()
			s.ctrl.checkpointConn(s)
		},
		func() {
			defer redirect.End()
			if s.ctrl.closing.Load() {
				return
			}
			redirect.Annotate("handoff timeout")
			s.mu.Lock()
			if s.m.State() == fsm.ResAcked {
				s.step(fsm.Timeout) // back to SUSPENDED
			}
			s.mu.Unlock()
		})
	return s.reply(wire.VerdictAck, func(r *wire.ControlReply) { r.LastSeq = s.delivered() })
}

// ---- heartbeat ----

// Ping measures one control-channel round trip to the peer agent's
// controller (a HEARTBEAT exchange). It works in any state that has a peer
// address — including SUSPENDED — and is the liveness probe of the
// fault-tolerance extension.
func (s *Socket) Ping(ctx context.Context) (time.Duration, error) {
	s.mu.Lock()
	if s.closed {
		err := s.closedErrLocked()
		s.mu.Unlock()
		return 0, err
	}
	addr := s.peerControlAddr
	s.mu.Unlock()
	m := &wire.ControlMsg{Type: wire.MsgHeartbeat, ConnID: s.id, From: s.localAgent, To: s.remoteAgent}
	start := time.Now()
	raw, err := s.ctrl.ep.Request(ctx, addr, m.Encode())
	if err != nil {
		return 0, err
	}
	if _, err := wire.DecodeControlReply(raw); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// ---- close ----

// Close actively closes the connection from ESTABLISHED or SUSPENDED (Fig
// 3), notifying the peer with a CLS exchange. It is idempotent.
func (s *Socket) Close() error {
	s.suspendOpMu.Lock()
	defer s.suspendOpMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.ctrl.obs.closes.Inc()
	st := s.m.State()
	switch st {
	case fsm.Established, fsm.Suspended:
		s.step(fsm.AppClose) // -> CLOSE_SENT
		s.mu.Unlock()
	case fsm.Listen:
		s.step(fsm.AppClose) // -> CLOSED
		s.markClosedLocked(nil)
		s.mu.Unlock()
		return nil
	case fsm.ResAcked, fsm.ResSent, fsm.ResumeWait, fsm.SusAcked, fsm.SusSent, fsm.SuspendWait:
		// Mid-operation: let the in-flight suspend/resume settle so the
		// peer gets a proper CLS instead of a silently dead endpoint.
		s.mu.Unlock()
		if _, err := s.waitState(s.ctrl.cfg.opTimeout(), fsm.Established, fsm.Suspended); err != nil {
			s.mu.Lock()
			s.markClosedLocked(nil)
			s.mu.Unlock()
			s.ctrl.dropConn(s)
			return nil
		}
		s.mu.Lock()
		if st := s.m.State(); st == fsm.Established || st == fsm.Suspended {
			s.step(fsm.AppClose) // -> CLOSE_SENT
			s.mu.Unlock()
		} else {
			s.markClosedLocked(nil)
			s.mu.Unlock()
			s.ctrl.dropConn(s)
			return nil
		}
	default:
		// Closing or closed already: tear down locally.
		s.markClosedLocked(nil)
		s.mu.Unlock()
		s.ctrl.dropConn(s)
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.ctrl.cfg.opTimeout())
	defer cancel()
	reply, err := s.request(ctx, wire.MsgClose, nil)
	// Drain before finalizing: the peer acked and is draining too, so all
	// in-flight frames (ours and theirs) land in the buffers — the paper's
	// exactly-once guarantee extends through a graceful close.
	if err == nil && reply.Verdict == wire.VerdictAck {
		s.drainAndClose()
	}
	s.mu.Lock()
	if err == nil && reply.Verdict == wire.VerdictAck {
		if s.m.State() == fsm.CloseSent {
			s.step(fsm.RecvCloseAck) // -> CLOSED
		}
	} else if s.m.State() == fsm.CloseSent {
		s.step(fsm.Timeout) // close anyway
	}
	s.markClosedLocked(nil)
	s.mu.Unlock()
	s.ctrl.dropConn(s)
	s.olog(obs.LevelInfo, "closed")
	return nil
}

// handleClose serves a peer's CLS request (passive close).
func (s *Socket) handleClose(_ *wire.ControlMsg) []byte {
	s.mu.Lock()
	// Let a granted suspend finish draining before classifying the close.
	drainDeadline := time.Now().Add(s.ctrl.cfg.drainTimeout())
	for s.m.State() == fsm.SusAcked && !s.closed {
		if !waitCond(s.cond, time.Until(drainDeadline)) {
			break
		}
	}
	switch st := s.m.State(); st {
	case fsm.Established, fsm.Suspended:
		s.step(fsm.RecvClose) // -> CLOSE_ACKED
		// Stop failure detection from misreading the closer's EOF, then
		// drain asynchronously so in-flight data reaches the buffer before
		// the connection finalizes.
		s.suspending = true
		s.mu.Unlock()
		go func() {
			s.drainAndClose()
			s.mu.Lock()
			if s.m.State() == fsm.CloseAcked {
				s.step(fsm.ExecClosed) // -> CLOSED
			}
			s.markClosedLocked(nil)
			s.mu.Unlock()
			s.ctrl.dropConn(s)
		}()
		return s.reply(wire.VerdictAck, nil)
	case fsm.Closed, fsm.CloseSent, fsm.CloseAcked:
		s.mu.Unlock()
		return s.reply(wire.VerdictAck, nil) // idempotent
	default:
		s.mu.Unlock()
		return s.reply(wire.VerdictReject, func(r *wire.ControlReply) {
			r.Reason = fmt.Sprintf("%s: close in state %s", reasonRetry, st)
		})
	}
}
