package core

import (
	"context"
	"testing"
	"time"
)

// These tests cover the controller's migration-aware location cache: the
// Locator wrapper that serves repeat lookups locally and is kept coherent
// by the SUS/SUS_RES/RES control messages instead of TTL expiry.

func (e *testEnv) lookupVia(host, agentID string) (string, uint64) {
	e.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, err := e.hosts[host].ctrl.lookupAgent(ctx, agentID)
	if err != nil {
		e.t.Fatalf("lookup %s via %s: %v", agentID, host, err)
	}
	return rec.Loc.ControlAddr, rec.Epoch
}

func TestLocationCacheAdvancedByResume(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("mover", "h1", "anchor", "h2")
	defer client.Close()

	// Suspend first (the SUS lands at h2 before its cache holds the
	// mover), then let h2 cache the mover's now-stale pre-migration
	// record — the window a slow lookup response naturally creates.
	blob, err := env.hosts["h1"].ctrl.PreDepart("mover")
	if err != nil {
		t.Fatal(err)
	}
	if addr, epoch := env.lookupVia("h2", "mover"); epoch != 1 || addr != env.hosts["h1"].ctrl.ControlAddr() {
		t.Fatalf("pre-migration record: %s @%d", addr, epoch)
	}

	// The mover lands on h3 at epoch 2; its RES toward h2 carries the new
	// addresses and the stamped epoch, which must advance h2's stale entry
	// without a registry round trip.
	if err := env.svc.Update("mover", env.hosts["h3"].loc(), 2); err != nil {
		t.Fatal(err)
	}
	env.hosts["h3"].ctrl.NoteLocationEpoch("mover", 2)
	if err := env.hosts["h3"].ctrl.PostArrive("mover", blob); err != nil {
		t.Fatal(err)
	}
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, moved, server)

	st, ok := env.hosts["h2"].ctrl.LocationCacheStats()
	if !ok {
		t.Fatal("location cache unexpectedly disabled")
	}
	if st.Advances == 0 {
		t.Fatalf("RES did not advance the cache: %+v", st)
	}
	hitsBefore := st.Hits
	addr, epoch := env.lookupVia("h2", "mover")
	if epoch != 2 || addr != env.hosts["h3"].ctrl.ControlAddr() {
		t.Fatalf("post-advance record: %s @%d, want h3 @2", addr, epoch)
	}
	if st, _ = env.hosts["h2"].ctrl.LocationCacheStats(); st.Hits != hitsBefore+1 {
		t.Fatalf("advanced entry not served from cache: %+v", st)
	}
}

func TestLocationCacheInvalidatedBySuspend(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, _ := env.pair("mover", "h1", "anchor", "h2")
	defer client.Close()

	// h2 caches the mover's location while the connection is live.
	env.lookupVia("h2", "mover")
	if st, _ := env.hosts["h2"].ctrl.LocationCacheStats(); st.Invalidations != 0 {
		t.Fatalf("premature invalidation: %+v", st)
	}

	// The mover's suspend reaches h2 as part of PreDepart; the cached
	// entry must be evicted proactively — not by waiting out a TTL.
	blob, err := env.hosts["h1"].ctrl.PreDepart("mover")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := env.hosts["h2"].ctrl.LocationCacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("SUS did not invalidate the cached location: %+v", st)
	}

	// Finish the migration so the teardown is orderly.
	if err := env.svc.Update("mover", env.hosts["h3"].loc(), 2); err != nil {
		t.Fatal(err)
	}
	if err := env.hosts["h3"].ctrl.PostArrive("mover", blob); err != nil {
		t.Fatal(err)
	}
	if addr, epoch := env.lookupVia("h2", "mover"); epoch != 2 || addr != env.hosts["h3"].ctrl.ControlAddr() {
		t.Fatalf("post-migration record: %s @%d, want h3 @2", addr, epoch)
	}
}

func TestLocationCacheUnstampedResumeInvalidates(t *testing.T) {
	// A mover whose host never noted an epoch stamps LocEpoch 0; the
	// receiver must treat that as "invalidate unconditionally" so the
	// stale entry cannot outlive the RES.
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("mover", "h1", "anchor", "h2")
	defer client.Close()

	blob, err := env.hosts["h1"].ctrl.PreDepart("mover")
	if err != nil {
		t.Fatal(err)
	}
	env.lookupVia("h2", "mover") // stale fill at epoch 1
	if err := env.svc.Update("mover", env.hosts["h3"].loc(), 2); err != nil {
		t.Fatal(err)
	}
	// Deliberately no NoteLocationEpoch on h3.
	if err := env.hosts["h3"].ctrl.PostArrive("mover", blob); err != nil {
		t.Fatal(err)
	}
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, moved, server)

	if addr, epoch := env.lookupVia("h2", "mover"); epoch != 2 || addr != env.hosts["h3"].ctrl.ControlAddr() {
		t.Fatalf("stale entry survived unstamped RES: %s @%d", addr, epoch)
	}
}

func TestNoteLocationEpochMonotonic(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	ctrl := env.hosts["h1"].ctrl
	ctrl.NoteLocationEpoch("a", 3)
	ctrl.NoteLocationEpoch("a", 2) // out-of-order note must not regress
	if got := ctrl.locationEpoch("a"); got != 3 {
		t.Fatalf("epoch regressed to %d", got)
	}
	ctrl.NoteLocationEpoch("a", 0) // forget
	if got := ctrl.locationEpoch("a"); got != 0 {
		t.Fatalf("epoch not forgotten: %d", got)
	}
}
