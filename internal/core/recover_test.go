package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/fsm"
	"naplet/internal/journal"
	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/security"
	"naplet/internal/trace"
)

// newFaultHost builds one controller outside the shared newEnv harness, so
// fault-injection tests can give each host its own journal, metrics
// registry, and control-channel drop hook.
func newFaultHost(t *testing.T, name string, svc *naming.Service, mutate func(*Config)) *testHost {
	t.Helper()
	guard, err := security.NewGuard(security.NewStore(security.AllowAgentAll()...))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		HostName:     name,
		Guard:        guard,
		Locator:      svc,
		Logf:         t.Logf,
		OpTimeout:    2 * time.Second,
		ParkTimeout:  20 * time.Second,
		DrainTimeout: 2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	return &testHost{name: name, ctrl: ctrl, guard: guard}
}

// faultPair opens a connection between agents resident on two fault hosts.
func faultPair(t *testing.T, svc *naming.Service, hc, hs *testHost, clientAgent, serverAgent string) (*Socket, *Socket) {
	t.Helper()
	if err := svc.Register(clientAgent, hc.loc()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register(serverAgent, hs.loc()); err != nil {
		t.Fatal(err)
	}
	ss, err := hs.ctrl.ListenAs(serverAgent, hs.cred(serverAgent))
	if err != nil {
		t.Fatal(err)
	}
	type acceptResult struct {
		s   *Socket
		err error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s, err := ss.Accept(ctx)
		acceptCh <- acceptResult{s, err}
	}()
	client, err := hc.ctrl.OpenAs(clientAgent, hc.cred(clientAgent), serverAgent)
	if err != nil {
		t.Fatal(err)
	}
	res := <-acceptCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	return client, res.s
}

// recordInto installs a delivery observer feeding the recorder with the
// 8-byte big-endian counters the tests stream.
func recordInto(rec *trace.Recorder, s *Socket) {
	s.SetObserver(func(seq uint64, payload []byte, fromBuffer bool) {
		counter := uint64(0)
		if len(payload) >= 8 {
			counter = binary.BigEndian.Uint64(payload)
		}
		src := trace.FromSocket
		if fromBuffer {
			src = trace.FromBuffer
		}
		rec.Record(seq, counter, src)
	})
}

func writeCounter(t *testing.T, s *Socket, i int) {
	t.Helper()
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], uint64(i))
	if err := s.WriteMsg(payload[:]); err != nil {
		t.Fatalf("sending %d: %v", i, err)
	}
}

// readCounters drains total messages from s in a goroutine; the returned
// channel yields nil on success.
func readCounters(s *Socket, total int) <-chan error {
	done := make(chan error, 1)
	go func() {
		for n := 0; n < total; n++ {
			if _, err := s.ReadMsg(); err != nil {
				done <- fmt.Errorf("read %d: %w", n, err)
				return
			}
		}
		done <- nil
	}()
	return done
}

func waitCounter(t *testing.T, reg *obs.Registry, name string, min uint64, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for reg.Snapshot().Counters[name] < min {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s never reached %d; snapshot = %v", name, min, reg.Snapshot().Counters)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRecoveryExactlyOnce is the in-process half of the kill-and-
// recover story: a journaling controller streaming checkpointed messages is
// torn down abruptly, a fresh controller reopens the same journal,
// RecoverConns restores the stranded connection, and the surviving receiver
// observes every counter exactly once, in order, across the crash.
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	svc := naming.NewService()
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ha := newFaultHost(t, "ha", svc, func(c *Config) { c.Journal = j })
	hb := newFaultHost(t, "hb", svc, nil)
	client, server := faultPair(t, svc, ha, hb, "alice", "bob")

	const total = 40
	rec := trace.NewRecorder()
	recordInto(rec, server)
	done := readCounters(server, total)

	for i := 0; i < total/2; i++ {
		writeCounter(t, client, i)
		ha.ctrl.checkpointConn(client)
	}

	// Crash: the controller goes away without dropping its journal records,
	// exactly as Close is specified to behave.
	id := client.ID()
	if err := ha.ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same host name and journal directory, fresh addresses.
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j2.Close() })
	reg2 := obs.NewRegistry()
	ha2 := newFaultHost(t, "ha", svc, func(c *Config) {
		c.Journal = j2
		c.Metrics = reg2
	})
	n, err := ha2.ctrl.RecoverConns()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("RecoverConns restored %d connections, want 1", n)
	}
	if err := svc.Update("alice", ha2.loc(), 2); err != nil {
		t.Fatal(err)
	}

	client2, err := ha2.ctrl.AgentSocket("alice", id)
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, client2)
	for i := total / 2; i < total; i++ {
		writeCounter(t, client2, i)
		ha2.ctrl.checkpointConn(client2)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("receiver: %v\n%s", err, rec.Render())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("receiver never finished; %d delivered\n%s", len(rec.Events()), rec.Render())
	}
	if err := rec.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatalf("reliability violated across crash: %v\n%s", err, rec.Render())
	}
	if got := len(rec.Events()); got != total {
		t.Fatalf("delivered %d messages, want %d", got, total)
	}

	snap := reg2.Snapshot()
	if snap.Counters["fault.conn_recoveries"] == 0 {
		t.Errorf("fault.conn_recoveries = 0 after recovery; counters = %v", snap.Counters)
	}
	if h := snap.Histograms["fault.recovery_ms"]; h.Count == 0 {
		t.Errorf("fault.recovery_ms has no samples; histograms = %v", snap.Histograms)
	}
}

// TestPartitionFalseSuspicionRecovers checks that a short control-channel
// partition makes the detector suspect — but never confirm — the peer, and
// that returning evidence clears the suspicion without the connection ever
// leaving ESTABLISHED.
func TestPartitionFalseSuspicionRecovers(t *testing.T) {
	svc := naming.NewService()
	var partition atomic.Bool
	reg := obs.NewRegistry()
	ha := newFaultHost(t, "pa", svc, func(c *Config) {
		c.HeartbeatInterval = 20 * time.Millisecond
		c.SuspicionThreshold = 1.5
		c.ConfirmFailures = 1000 // out of reach: a short partition must not confirm
		c.Metrics = reg
		c.ControlDropFn = func([]byte) bool { return partition.Load() }
	})
	hb := newFaultHost(t, "pb", svc, nil)
	client, server := faultPair(t, svc, ha, hb, "alice", "bob")

	// The reconciler must begin watching the peer controller.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Gauges["fault.watched"] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("detector never watched the peer; gauges = %v", reg.Snapshot().Gauges)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCounter(t, reg, "fault.probes", 1, 10*time.Second)

	partition.Store(true)
	waitCounter(t, reg, "fault.suspects", 1, 15*time.Second)
	partition.Store(false)
	waitCounter(t, reg, "fault.recoveries", 1, 15*time.Second)

	if got := reg.Snapshot().Counters["fault.confirms"]; got != 0 {
		t.Errorf("short partition confirmed the peer down %d times; want 0", got)
	}
	if st := client.State(); st != fsm.Established {
		t.Errorf("client state = %s after false suspicion, want ESTABLISHED", st)
	}

	// The connection carried no scars: data still flows both ways.
	if err := client.WriteMsg([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if m, err := server.ReadMsg(); err != nil || string(m) != "after" {
		t.Fatalf("server read %q, %v", m, err)
	}
	if err := server.WriteMsg([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if m, err := client.ReadMsg(); err != nil || string(m) != "back" {
		t.Fatalf("client read %q, %v", m, err)
	}
}

// TestPartitionConfirmedFailureHeals drives the detector all the way to
// Confirm: the connection degrades to SUSPENDED, and once the partition
// heals the failure-resume loop re-establishes it and the stream continues.
func TestPartitionConfirmedFailureHeals(t *testing.T) {
	svc := naming.NewService()
	var partition atomic.Bool
	reg := obs.NewRegistry()
	ha := newFaultHost(t, "ca", svc, func(c *Config) {
		c.HeartbeatInterval = 20 * time.Millisecond
		c.SuspicionThreshold = 1.5
		c.ConfirmFailures = 3
		c.Metrics = reg
		c.ControlDropFn = func([]byte) bool { return partition.Load() }
	})
	hb := newFaultHost(t, "cb", svc, nil)
	client, server := faultPair(t, svc, ha, hb, "alice", "bob")

	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Gauges["fault.watched"] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("detector never watched the peer; gauges = %v", reg.Snapshot().Gauges)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCounter(t, reg, "fault.probes", 1, 10*time.Second)

	partition.Store(true)
	waitCounter(t, reg, "fault.confirms", 1, 15*time.Second)

	// Confirm must have failed the established connection over to SUSPENDED.
	if _, err := client.waitState(10*time.Second, fsm.Suspended); err != nil {
		t.Fatalf("client never degraded to SUSPENDED after confirm: %v (state %s)", err, client.State())
	}

	partition.Store(false)
	waitEstablished(t, client)

	if err := client.WriteMsg([]byte("healed")); err != nil {
		t.Fatal(err)
	}
	if m, err := server.ReadMsg(); err != nil || string(m) != "healed" {
		t.Fatalf("server read %q, %v", m, err)
	}

	snap := reg.Snapshot()
	if snap.Counters["fault.conn_recoveries"] == 0 {
		t.Errorf("fault.conn_recoveries = 0 after heal; counters = %v", snap.Counters)
	}
	if h := snap.Histograms["fault.recovery_ms"]; h.Count == 0 {
		t.Errorf("fault.recovery_ms has no samples after heal; histograms = %v", snap.Histograms)
	}
}

// TestSuspendResumeUnderControlLoss streams numbered messages through two
// mid-stream migrations while every fourth outgoing control packet — on
// every host — is dropped. The RUDP retransmission machinery must carry the
// suspend/resume handshakes through the loss, and the receiver must still
// observe every counter exactly once, in order.
func TestSuspendResumeUnderControlLoss(t *testing.T) {
	var sends atomic.Uint64
	lossy := func([]byte) bool { return sends.Add(1)%4 == 0 }
	env := newEnv(t, []string{"h1", "h2", "h3"}, func(c *Config) { c.ControlDropFn = lossy })
	client, server := env.pair("left", "h1", "right", "h2")

	const total = 30
	rec := trace.NewRecorder()
	recordInto(rec, server)
	done := readCounters(server, total)

	hops := []struct {
		at       int
		from, to string
	}{{total / 3, "h1", "h3"}, {2 * total / 3, "h3", "h1"}}
	epoch := uint64(1)
	hop := 0
	cur := client
	for i := 0; i < total; i++ {
		if hop < len(hops) && i == hops[hop].at {
			epoch++
			env.migrate("left", hops[hop].from, hops[hop].to, epoch)
			moved, err := env.hosts[hops[hop].to].ctrl.AgentSocket("left", client.ID())
			if err != nil {
				t.Fatalf("reattach after hop %d: %v", hop, err)
			}
			waitEstablished(t, moved)
			cur = moved
			hop++
		}
		writeCounter(t, cur, i)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("receiver: %v\n%s", err, rec.Render())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("receiver never finished under loss; %d delivered", len(rec.Events()))
	}
	if err := rec.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatalf("reliability violated under control loss: %v\n%s", err, rec.Render())
	}
	if got := len(rec.Events()); got != total {
		t.Fatalf("delivered %d messages, want %d", got, total)
	}
}

// TestDoubleFailureConcurrentMigrationWithCrash composes the two failure
// modes: both endpoints migrate concurrently (the Fig 4 overlap machinery),
// and then the host one of them landed on crashes and is rebuilt from its
// journal. The connection must survive both — migration state through the
// journaled checkpoint, and the final resume through crash recovery.
func TestDoubleFailureConcurrentMigrationWithCrash(t *testing.T) {
	svc := naming.NewService()
	dir := t.TempDir()
	j4, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	h1 := newFaultHost(t, "h1", svc, nil)
	h2 := newFaultHost(t, "h2", svc, nil)
	h3 := newFaultHost(t, "h3", svc, nil)
	h4 := newFaultHost(t, "h4", svc, func(c *Config) { c.Journal = j4 })

	client, server := faultPair(t, svc, h1, h2, "left", "right")

	if err := client.WriteMsg([]byte("pre-l")); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteMsg([]byte("pre-r")); err != nil {
		t.Fatal(err)
	}

	migrate := func(agentID string, from, to *testHost, epoch uint64) {
		t.Helper()
		blob, err := from.ctrl.PreDepart(agentID)
		if err != nil {
			t.Errorf("PreDepart(%s): %v", agentID, err)
			return
		}
		if err := svc.Update(agentID, to.loc(), epoch); err != nil {
			t.Errorf("location update for %s: %v", agentID, err)
			return
		}
		if err := to.ctrl.PostArrive(agentID, blob); err != nil {
			t.Errorf("PostArrive(%s): %v", agentID, err)
		}
	}

	// Both endpoints migrate at once: left h1→h3, right h2→h4.
	migDone := make(chan struct{}, 2)
	go func() { migrate("left", h1, h3, 2); migDone <- struct{}{} }()
	go func() { migrate("right", h2, h4, 2); migDone <- struct{}{} }()
	<-migDone
	<-migDone

	movedL, err := h3.ctrl.AgentSocket("left", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	movedR, err := h4.ctrl.AgentSocket("right", server.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, movedL, movedR)
	if m, err := movedR.ReadMsg(); err != nil || string(m) != "pre-l" {
		t.Fatalf("right pre msg: %q, %v", m, err)
	}
	if m, err := movedL.ReadMsg(); err != nil || string(m) != "pre-r" {
		t.Fatalf("left pre msg: %q, %v", m, err)
	}
	// Consuming a message is externally visible progress: checkpoint it, as
	// a receiving behaviour would (Context.Checkpoint), so the crash below
	// cannot roll the delivery cursor back and redeliver pre-l.
	h4.ctrl.checkpointConn(movedR)

	// Second failure: the host the server landed on crashes and restarts
	// from its journal.
	if err := h4.ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j4.Close(); err != nil {
		t.Fatal(err)
	}
	j4b, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j4b.Close() })
	h4b := newFaultHost(t, "h4", svc, func(c *Config) { c.Journal = j4b })
	n, err := h4b.ctrl.RecoverConns()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("RecoverConns restored %d connections, want 1", n)
	}
	if err := svc.Update("right", h4b.loc(), 3); err != nil {
		t.Fatal(err)
	}

	movedR2, err := h4b.ctrl.AgentSocket("right", server.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, movedL, movedR2)

	if err := movedL.WriteMsg([]byte("post-l")); err != nil {
		t.Fatal(err)
	}
	if m, err := movedR2.ReadMsg(); err != nil || string(m) != "post-l" {
		t.Fatalf("right post msg: %q, %v", m, err)
	}
	if err := movedR2.WriteMsg([]byte("post-r")); err != nil {
		t.Fatal(err)
	}
	if m, err := movedL.ReadMsg(); err != nil || string(m) != "post-r" {
		t.Fatalf("left post msg: %q, %v", m, err)
	}
}
