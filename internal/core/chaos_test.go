package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"naplet/internal/netem"
	"naplet/internal/obs"
)

// chaosMsg builds the deterministic payload for message k of stream i:
// the length and every byte are functions of (i, k), so the reader can
// verify byte-exact, in-order, exactly-once delivery without any shared
// state with the writer.
func chaosMsg(i, k int) []byte {
	n := 16 + (i*197+k*61)%2048
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(i*31 + k*131 + j*7)
	}
	return p
}

// TestChaosSoakExactlyOnce is the chaos soak from ISSUE 5: 16 logical
// streams between hosts, two agent migrations mid-traffic, and a netem
// fault schedule injecting at least five transport resets, a two-second
// full partition, control-plane packet loss, and a bandwidth cap — all
// while every payload must arrive byte-exact, in order, exactly once,
// with no error ever surfacing to a stream caller.
//
// Every inter-host transport dial (including session-resumption redials)
// is routed through a per-host netem.Proxy by the DialData hook, so the
// whole shared-transport layer lives under the fault plan. The control
// plane (RUDP) takes seeded probabilistic loss via ControlDropFn.
func TestChaosSoakExactlyOnce(t *testing.T) {
	const streams = 16
	msgsPerStream := 300
	if testing.Short() {
		msgsPerStream = 100
	}

	faults := netem.NewFaults(0xC4A05)
	faults.SetLoss(0.02)          // control-plane loss; RUDP retransmits
	faults.SetBandwidth(16 << 20) // mild cap so pacing code is exercised

	// Transport dials consult this table and are rerouted through the
	// fault proxies; it is filled in after the controllers exist.
	var rw struct {
		sync.Mutex
		m map[string]string
	}
	rw.m = make(map[string]string)
	dialViaProxy := func(addr string, timeout time.Duration) (net.Conn, error) {
		rw.Lock()
		if p, ok := rw.m[addr]; ok {
			addr = p
		}
		rw.Unlock()
		return net.DialTimeout("tcp", addr, timeout)
	}

	regs := make(map[string]*obs.Registry)
	tracers := make(map[string]*obs.Tracer)
	chaos := func(c *Config) {
		c.DialData = dialViaProxy
		c.ControlDropFn = faults.DropFn()
		c.TransportKeepaliveInterval = 100 * time.Millisecond
		c.TransportKeepaliveTimeout = 600 * time.Millisecond
		c.TransportResumeWindow = 30 * time.Second
		c.OpTimeout = 10 * time.Second
		r := obs.NewRegistry()
		regs[c.HostName] = r
		c.Metrics = r
		tr := obs.NewTracer(c.HostName)
		tracers[c.HostName] = tr
		c.Tracer = tr
	}
	// The soak runs cleartext by default (the handshake is not under test);
	// CHAOS_SECURE=1 switches every host to the full negotiated stack —
	// DH handshake, AES-GCM record layer, and rekey on each resumed
	// transport generation — so CI proves exactly-once survives the fault
	// plan with encryption on too.
	opts := []envOption{chaos}
	if os.Getenv("CHAOS_SECURE") == "" {
		opts = append([]envOption{insecure()}, opts...)
	} else {
		t.Log("CHAOS_SECURE set: running soak with encrypted transports")
	}
	env := newEnv(t, []string{"h1", "h2", "h3"}, opts...)

	proxies := make(map[string]*netem.Proxy)
	rw.Lock()
	for name, h := range env.hosts {
		p, err := netem.NewProxy(h.ctrl.DataAddr(), faults)
		if err != nil {
			rw.Unlock()
			t.Fatal(err)
		}
		proxies[name] = p
		rw.m[h.ctrl.DataAddr()] = p.Addr()
		t.Cleanup(func() { p.Close() })
	}
	rw.Unlock()

	// 16 logical streams: clients c0..c15 on h1, servers s0..s15 on h2.
	// c0 and c1 migrate to h3 mid-traffic.
	clients := make([]*Socket, streams)
	servers := make([]*Socket, streams)
	for i := 0; i < streams; i++ {
		clients[i], servers[i] = env.pair(
			fmt.Sprintf("c%d", i), "h1", fmt.Sprintf("s%d", i), "h2")
	}

	const migrators = 2
	var (
		wg sync.WaitGroup
		// Migrating writers pause at the halfway mark: halfDone signals
		// the scheduler it is safe to PreDepart, and the moved socket
		// comes back on resumed.
		halfDone [migrators]chan struct{}
		resumed  [migrators]chan *Socket
	)
	for i := range halfDone {
		halfDone[i] = make(chan struct{})
		resumed[i] = make(chan *Socket, 1)
	}

	writer := func(i int) {
		defer wg.Done()
		s := clients[i]
		for k := 0; k < msgsPerStream; k++ {
			if i < migrators && k == msgsPerStream/2 {
				close(halfDone[i])
				s = <-resumed[i]
			}
			if err := s.WriteMsg(chaosMsg(i, k)); err != nil {
				t.Errorf("stream %d write %d: %v", i, k, err)
				return
			}
		}
	}
	reader := func(i int) {
		defer wg.Done()
		for k := 0; k < msgsPerStream; k++ {
			m, err := servers[i].ReadMsg()
			if err != nil {
				t.Errorf("stream %d read %d: %v", i, k, err)
				return
			}
			if want := chaosMsg(i, k); !bytes.Equal(m, want) {
				t.Errorf("stream %d msg %d: got %d bytes, want %d; payload mismatch",
					i, k, len(m), len(want))
				return
			}
		}
	}
	wg.Add(2 * streams)
	for i := 0; i < streams; i++ {
		go writer(i)
		go reader(i)
	}

	resetAll := func() int {
		n := 0
		for _, p := range proxies {
			n += p.ResetAll()
		}
		return n
	}
	migrate := func(mi int, agent string) {
		<-halfDone[mi]
		env.migrate(agent, "h1", "h3", 2)
		moved, err := env.hosts["h3"].ctrl.AgentSocket(agent, clients[mi].ID())
		if err != nil {
			t.Fatalf("%s after migration: %v", agent, err)
		}
		waitEstablished(t, moved)
		resumed[mi] <- moved
	}

	// The scripted fault schedule: resets bracket both migrations, with
	// the full partition in between. Six reset rounds guarantee the
	// ">= 5 transport resets" floor even if an early round finds no
	// flow up yet.
	schedule := []func(){
		func() { time.Sleep(250 * time.Millisecond) },
		func() { resetAll() },
		func() { time.Sleep(350 * time.Millisecond); resetAll() },
		func() { migrate(0, "c0") },
		func() { resetAll() },
		func() {
			faults.StallAll(true)
			time.Sleep(2 * time.Second)
			faults.StallAll(false)
		},
		func() { time.Sleep(350 * time.Millisecond); resetAll() },
		func() { migrate(1, "c1") },
		func() { resetAll() },
		func() { time.Sleep(350 * time.Millisecond); resetAll() },
	}
	for _, step := range schedule {
		step()
	}

	wg.Wait()

	var resets uint64
	for _, p := range proxies {
		resets += p.Resets()
	}
	if resets < 5 {
		t.Errorf("fault schedule injected only %d transport resets, want >= 5", resets)
	}
	var reconnects, resumedStreams uint64
	for _, r := range regs {
		reconnects += r.Counter("transport.reconnects").Value()
		resumedStreams += r.Counter("transport.resumed_streams").Value()
	}
	if reconnects < 3 {
		t.Errorf("transport.reconnects = %d, want >= 3 (resumption never exercised?)", reconnects)
	}
	if resumedStreams == 0 {
		t.Error("transport.resumed_streams = 0: no stream ever survived a reset in place")
	}
	t.Logf("soak: %d streams x %d msgs, %d resets, %d reconnects, %d streams resumed",
		streams, msgsPerStream, resets, reconnects, resumedStreams)

	saveSlowestTraces(t, tracers)
}

// saveSlowestTraces writes the five slowest migration traces of the soak —
// each host's spans merged by trace id — as JSON to $CHAOS_TRACE_OUT, so CI
// can keep them as a build artifact. A no-op when the variable is unset.
func saveSlowestTraces(t *testing.T, tracers map[string]*obs.Tracer) {
	out := os.Getenv("CHAOS_TRACE_OUT")
	if out == "" {
		return
	}
	type mergedTrace struct {
		ID         string             `json:"id"`
		Root       string             `json:"root"`
		DurationMs float64            `json:"duration_ms"`
		Phases     map[string]float64 `json:"phases_ms"`
		Spans      []obs.SpanRecord   `json:"spans"`
	}
	byID := make(map[string]*mergedTrace)
	for _, tr := range tracers {
		for _, ts := range tr.Snapshot() {
			m := byID[ts.ID]
			if m == nil {
				m = &mergedTrace{ID: ts.ID, Root: ts.Root, Phases: make(map[string]float64)}
				byID[ts.ID] = m
			}
			// Migration traces root at "migrate <agent>" or "depart"; keep
			// the most descriptive root seen.
			if strings.HasPrefix(ts.Root, "migrate ") {
				m.Root = ts.Root
			}
			m.Spans = append(m.Spans, ts.Spans...)
			for name, ms := range ts.Phases {
				m.Phases[name] += ms
			}
			if ts.DurationMs > m.DurationMs {
				m.DurationMs = ts.DurationMs
			}
		}
	}
	migrations := make([]*mergedTrace, 0, len(byID))
	for _, m := range byID {
		if strings.HasPrefix(m.Root, "migrate ") || m.Root == "depart" {
			migrations = append(migrations, m)
		}
	}
	sort.Slice(migrations, func(i, j int) bool { return migrations[i].DurationMs > migrations[j].DurationMs })
	if len(migrations) > 5 {
		migrations = migrations[:5]
	}
	raw, err := json.MarshalIndent(struct {
		SavedAt time.Time      `json:"saved_at"`
		Traces  []*mergedTrace `json:"traces"`
	}{time.Now(), migrations}, "", "  ")
	if err != nil {
		t.Errorf("marshaling slowest traces: %v", err)
		return
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Errorf("writing %s: %v", out, err)
		return
	}
	t.Logf("saved %d slowest migration traces to %s", len(migrations), out)
}
