package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"naplet/internal/fsm"
	"naplet/internal/metrics"
)

// ---- byte-stream semantics ----

func TestReadSmallBufferLeftovers(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()

	if _, err := client.Write([]byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	// Read it back two bytes at a time: the leftover path must preserve
	// order and lose nothing.
	var got []byte
	buf := make([]byte, 2)
	for len(got) < 10 {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "abcdefghij" {
		t.Fatalf("got %q", got)
	}
}

func TestReadZeroLengthBuffer(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	if n, err := server.Read(nil); n != 0 || err != nil {
		t.Fatalf("Read(nil) = %d, %v", n, err)
	}
}

func TestLeftoversSurviveMigration(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	client, server := env.pair("mover", "h1", "anchor", "h2")

	// The anchor writes one 8-byte message; the mover reads only 3 bytes,
	// leaving 5 in the leftover buffer, then migrates: the 5 bytes must
	// arrive at the new host.
	if _, err := server.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 3)
	if _, err := io.ReadFull(client, small); err != nil {
		t.Fatal(err)
	}
	if string(small) != "123" {
		t.Fatalf("first read %q", small)
	}
	env.migrate("mover", "h1", "h3", 2)
	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	rest := make([]byte, 5)
	if _, err := io.ReadFull(moved, rest); err != nil {
		t.Fatal(err)
	}
	if string(rest) != "45678" {
		t.Fatalf("leftover after migration = %q", rest)
	}
}

func TestWriteMsgTooLargeRejected(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	if err := client.WriteMsg(make([]byte, 2<<20)); err == nil {
		t.Fatal("oversize message accepted")
	}
}

// ---- server socket lifecycle ----

func TestAcceptContextCancel(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	h := env.hosts["h1"]
	env.place("b", "h1")
	ss, err := h.ctrl.ListenAs("b", h.cred("b"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := ss.Accept(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerSocketCloseUnblocksAccept(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	h := env.hosts["h1"]
	env.place("b", "h1")
	ss, err := h.ctrl.ListenAs("b", h.cred("b"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ss.Accept(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("accept err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("accept never unblocked")
	}
	// Close is idempotent.
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestListenTwiceReturnsSameSocket(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	h := env.hosts["h1"]
	ss1, err := h.ctrl.ListenAs("b", h.cred("b"))
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := h.ctrl.ListenAs("b", h.cred("b"))
	if err != nil {
		t.Fatal(err)
	}
	if ss1 != ss2 {
		t.Fatal("second Listen created a new server socket")
	}
	ss1.Close()
	ss3, err := h.ctrl.ListenAs("b", h.cred("b"))
	if err != nil {
		t.Fatal(err)
	}
	if ss3 == ss1 {
		t.Fatal("Listen after Close returned the closed socket")
	}
}

func TestUnacceptedBacklogMigrates(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2", "h3"})
	env.place("srv", "h1")
	env.place("cli", "h2")
	h1, h2 := env.hosts["h1"], env.hosts["h2"]
	if _, err := h1.ctrl.ListenAs("srv", h1.cred("srv")); err != nil {
		t.Fatal(err)
	}
	// Establish a connection that the server agent never accepts...
	client, err := h2.ctrl.OpenAs("cli", h2.cred("cli"), "srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.WriteMsg([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	// ...then migrate the server agent. The queued connection must follow
	// and still be acceptable at the new host.
	env.migrate("srv", "h1", "h3", 2)
	h3 := env.hosts["h3"]
	ss, err := h3.ctrl.ListenAs("srv", h3.cred("srv"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	server, err := ss.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.waitState(10*time.Second, fsm.Established); err != nil {
		t.Fatal(err)
	}
	if m, err := server.ReadMsg(); err != nil || string(m) != "queued" {
		t.Fatalf("backlog data: %q, %v", m, err)
	}
}

// ---- dialing agents that are not ready yet ----

func TestDialRetriesUntilListenerAppears(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	env.place("late", "h2")
	env.place("cli", "h1")
	h1, h2 := env.hosts["h1"], env.hosts["h2"]

	dialDone := make(chan error, 1)
	var client *Socket
	go func() {
		var err error
		client, err = h1.ctrl.DialAs("cli", h1.cred("cli"), "late")
		dialDone <- err
	}()
	// No listener yet: the dial must keep retrying.
	time.Sleep(50 * time.Millisecond)
	ss, err := h2.ctrl.ListenAs("late", h2.cred("late"))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ss.Accept(ctx)
	}()
	select {
	case err := <-dialDone:
		if err != nil {
			t.Fatal(err)
		}
		client.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("dial never completed")
	}
}

// ---- ping / heartbeat ----

func TestPing(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	ctx := context.Background()
	rtt, err := client.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("rtt = %v", rtt)
	}
	// Ping works while suspended too (the liveness probe).
	if err := client.Suspend(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ping(ctx); err != nil {
		t.Fatalf("ping while suspended: %v", err)
	}
	client.Resume()
}

func TestPingClosedConnection(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, _ := env.pair("a", "h1", "b", "h2")
	client.Close()
	if _, err := client.Ping(context.Background()); err == nil {
		t.Fatal("ping on closed connection succeeded")
	}
}

// ---- controller ----

func TestControllerCloseIdempotent(t *testing.T) {
	env := newEnv(t, []string{"h1"})
	ctrl := env.hosts["h1"].ctrl
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRequiresGuardAndLocator(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestOpenBreakdownAccumulates(t *testing.T) {
	bd := metrics.NewBreakdown()
	env := &testEnv{t: t, svc: nil}
	_ = env
	d := newEnv(t, []string{"h1", "h2"})
	// Swap in a controller with the breakdown on h1.
	h := d.hosts["h1"]
	cfg := Config{
		HostName: "h1b", Guard: h.guard, Locator: d.svc,
		OpenBreakdown: bd, Logf: t.Logf,
	}
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	d.svc.Register("bd-cli", d.hosts["h1"].loc()) // placement irrelevant for dialing
	d.place("bd-srv", "h2")
	hs := d.hosts["h2"]
	ss, err := hs.ctrl.ListenAs("bd-srv", hs.cred("bd-srv"))
	if err != nil {
		t.Fatal(err)
	}
	_ = ss
	conn, err := ctrl.OpenAs("bd-cli", h.cred("bd-cli"), "bd-srv")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if bd.Total() <= 0 {
		t.Fatal("breakdown recorded nothing")
	}
	if bd.Get(metrics.PhaseKeyExchange) <= 0 {
		t.Fatal("key exchange phase not recorded")
	}
}

// ---- priority function ----

func TestAgentPriorityAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true // reflexive case undefined; never occurs (distinct ids)
		}
		return agentPriority(a, b) != agentPriority(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAgentPriorityDeterministic(t *testing.T) {
	if agentPriority("x", "y") != agentPriority("x", "y") {
		t.Fatal("priority not deterministic")
	}
}

// ---- soak: many pairs, random migrations, continuous traffic ----

func TestSoakRandomMigrationsManyPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	env := newEnv(t, []string{"h1", "h2", "h3", "h4"})
	const pairs = 4
	const msgs = 2000

	type pairState struct {
		mu     sync.Mutex
		client *Socket
		id     string
		host   string
		epoch  uint64
	}
	states := make([]*pairState, pairs)
	servers := make([]*Socket, pairs)
	for i := 0; i < pairs; i++ {
		mover := fmt.Sprintf("mover-%d", i)
		anchor := fmt.Sprintf("anchor-%d", i)
		c, s := env.pair(mover, "h1", anchor, "h2")
		states[i] = &pairState{client: c, id: mover, host: "h1", epoch: 1}
		servers[i] = s
	}

	var wg sync.WaitGroup
	errs := make(chan error, pairs*3)

	// Writers: each mover streams numbered messages, re-attaching on
	// migration.
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(st *pairState) {
			defer wg.Done()
			for n := 0; n < msgs; {
				st.mu.Lock()
				c := st.client
				st.mu.Unlock()
				err := c.WriteMsg([]byte{byte(n), byte(n >> 8)})
				if errors.Is(err, ErrMigrated) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("writer: %w", err)
					return
				}
				n++
				if n%10 == 0 {
					// Pace the stream so migrations interleave with it.
					time.Sleep(time.Millisecond)
				}
			}
		}(states[i])
	}

	// Readers: anchors verify strict ordering.
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(s *Socket, idx int) {
			defer wg.Done()
			for n := 0; n < msgs; n++ {
				m, err := s.ReadMsg()
				if err != nil {
					errs <- fmt.Errorf("reader %d at %d: %w", idx, n, err)
					return
				}
				if got := int(m[0]) | int(m[1])<<8; got != n {
					errs <- fmt.Errorf("reader %d: message %d arrived as %d", idx, n, got)
					return
				}
			}
		}(servers[i], i)
	}

	// Migrator: move random movers around while traffic flows.
	ring := []string{"h1", "h3", "h4"}
	rng := rand.New(rand.NewSource(99))
	stopMig := make(chan struct{})
	var migrations int
	var migWG sync.WaitGroup
	migWG.Add(1)
	go func() {
		defer migWG.Done()
		for {
			select {
			case <-stopMig:
				return
			case <-time.After(2 * time.Millisecond):
			}
			st := states[rng.Intn(pairs)]
			st.mu.Lock()
			from := st.host
			to := ring[rng.Intn(len(ring))]
			if to == from {
				st.mu.Unlock()
				continue
			}
			st.epoch++
			epoch := st.epoch
			id := st.id
			connID := st.client.ID()
			st.mu.Unlock()

			blob, err := env.hosts[from].ctrl.PreDepart(id)
			if err != nil {
				errs <- fmt.Errorf("predepart %s: %w", id, err)
				return
			}
			if err := env.svc.Update(id, env.hosts[to].loc(), epoch); err != nil {
				errs <- err
				return
			}
			if err := env.hosts[to].ctrl.PostArrive(id, blob); err != nil {
				errs <- fmt.Errorf("postarrive %s: %w", id, err)
				return
			}
			moved, err := env.hosts[to].ctrl.AgentSocket(id, connID)
			if err != nil {
				errs <- err
				return
			}
			st.mu.Lock()
			st.host = to
			st.client = moved
			st.mu.Unlock()
			migrations++
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(90 * time.Second):
		t.Fatal("soak did not finish")
	}
	close(stopMig)
	migWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if migrations == 0 {
		t.Fatal("soak completed without a single migration — not exercising the mechanism")
	}
	t.Logf("soak: %d pairs × %d messages across %d random migrations", pairs, msgs, migrations)
}

func TestControllerStats(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	h1 := env.hosts["h1"]
	if got := h1.ctrl.Stats(); got.Connections != 0 || got.Listeners != 0 {
		t.Fatalf("fresh stats = %+v", got)
	}
	client, _ := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	st1 := h1.ctrl.Stats()
	if st1.Connections != 1 || st1.ByState["ESTABLISHED"] != 1 {
		t.Fatalf("h1 stats = %+v", st1)
	}
	st2 := env.hosts["h2"].ctrl.Stats()
	if st2.Connections != 1 || st2.Listeners != 1 {
		t.Fatalf("h2 stats = %+v", st2)
	}
	if err := client.Suspend(); err != nil {
		t.Fatal(err)
	}
	if st := h1.ctrl.Stats(); st.ByState["SUSPENDED"] != 1 {
		t.Fatalf("suspended stats = %+v", st)
	}
	client.Resume()
}

func TestSocketInfo(t *testing.T) {
	env := newEnv(t, []string{"h1", "h2"})
	client, server := env.pair("a", "h1", "b", "h2")
	defer client.Close()
	if err := client.WriteMsg([]byte("abcde")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for server.Info().RecvBufferedMsgs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("message never buffered at server")
		}
		time.Sleep(time.Millisecond)
	}
	ci := client.Info()
	if ci.State != "ESTABLISHED" || ci.LocalAgent != "a" || ci.RemoteAgent != "b" {
		t.Fatalf("client info = %+v", ci)
	}
	if ci.NextSendSeq != 2 || ci.SendLogBytes != 5 {
		t.Fatalf("client cursors = %+v", ci)
	}
	si := server.Info()
	if si.LastEnqueued != 1 || si.RecvBufferedBytes != 5 {
		t.Fatalf("server info = %+v", si)
	}
	// Exactly one endpoint holds the priority.
	if ci.HighPriority == si.HighPriority {
		t.Fatal("priority not asymmetric")
	}
	if err := client.Suspend(); err != nil {
		t.Fatal(err)
	}
	if got := client.Info().State; got != "SUSPENDED" {
		t.Fatalf("state after suspend = %s", got)
	}
	client.Resume()
}
