package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingDialer installs a Config.DialData hook that counts kernel TCP
// dials, so tests can assert how many physical connections the transport
// layer actually opened.
func countingDialer(dials *atomic.Int64) envOption {
	return func(c *Config) {
		c.DialData = func(addr string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

// TestConnectionStormSharesOneKernelDial opens many logical connections
// between one host pair concurrently and asserts they all ride a single
// kernel TCP connection: the transport manager must coalesce the storm of
// simultaneous first dials into one (singleflight), and every later open
// must reuse the warm transport.
func TestConnectionStormSharesOneKernelDial(t *testing.T) {
	const n = 16
	var dials atomic.Int64
	env := newEnv(t, []string{"h1", "h2"}, countingDialer(&dials))
	hc, hs := env.hosts["h1"], env.hosts["h2"]

	env.place("srv", "h2")
	ss, err := hs.ctrl.ListenAs("srv", hs.cred("srv"))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			s, err := ss.Accept(ctx)
			cancel()
			if err != nil {
				return
			}
			// Echo one message per accepted connection.
			go func() {
				buf := make([]byte, 64)
				n, err := s.Read(buf)
				if err != nil {
					return
				}
				s.Write(buf[:n])
			}()
		}
	}()

	var wg sync.WaitGroup
	conns := make([]*Socket, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		agent := fmt.Sprintf("c%d", i)
		env.place(agent, "h1")
		wg.Add(1)
		go func(i int, agent string) {
			defer wg.Done()
			conns[i], errs[i] = hc.ctrl.OpenAs(agent, hc.cred(agent), "srv")
		}(i, agent)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}

	// Every logical connection must carry data independently.
	for i, conn := range conns {
		msg := []byte(fmt.Sprintf("hello-%d", i))
		if _, err := conn.Write(msg); err != nil {
			t.Fatalf("conn %d write: %v", i, err)
		}
	}
	for i, conn := range conns {
		buf := make([]byte, 64)
		rn, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("conn %d read: %v", i, err)
		}
		if want := fmt.Sprintf("hello-%d", i); string(buf[:rn]) != want {
			t.Fatalf("conn %d echoed %q, want %q", i, buf[:rn], want)
		}
	}

	if got := dials.Load(); got != 1 {
		t.Fatalf("%d logical connections used %d kernel dials, want 1", n, got)
	}
	transports, streams := hc.ctrl.transportCounts()
	if transports != 1 {
		t.Fatalf("client holds %d transports, want 1", transports)
	}
	if streams != n {
		t.Fatalf("client transport carries %d streams, want %d", streams, n)
	}

	for _, conn := range conns {
		conn.Close()
	}
}

// TestWarmTransportSpeedsOpen reproduces the Table 1 amortisation claim:
// opening a connection over a warm shared transport must be faster than a
// cold open that pays the kernel dial and the per-host-pair key exchange.
func TestWarmTransportSpeedsOpen(t *testing.T) {
	const iters = 10
	env := newEnv(t, []string{"h1", "h2"})
	hc, hs := env.hosts["h1"], env.hosts["h2"]

	env.place("c", "h1")
	env.place("srv", "h2")
	ss, err := hs.ctrl.ListenAs("srv", hs.cred("srv"))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			s, err := ss.Accept(ctx)
			cancel()
			if err != nil {
				return
			}
			defer s.Close()
		}
	}()

	cred := hc.cred("c")
	open := func() time.Duration {
		start := time.Now()
		conn, err := hc.ctrl.OpenAs("c", cred, "srv")
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		conn.Close()
		return d
	}

	// Warm-up so both measurement loops start from the same state.
	open()

	var warm, cold time.Duration
	for i := 0; i < iters; i++ {
		warm += open()
	}
	for i := 0; i < iters; i++ {
		hc.ctrl.CloseTransports()
		cold += open()
	}

	t.Logf("warm open mean %v, cold open mean %v", warm/iters, cold/iters)
	if warm >= cold {
		t.Fatalf("warm opens (%v total) not faster than cold opens (%v total)", warm, cold)
	}
}
