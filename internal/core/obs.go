package core

import (
	"fmt"
	"log"
	"time"

	"naplet/internal/fsm"
	"naplet/internal/metrics"
	"naplet/internal/obs"
	"naplet/internal/rudp"
	"naplet/internal/wire"
)

// ctrlObs bundles the controller's observability handles: the leveled
// logger, the metric instruments created once at startup, and the
// per-phase breakdowns for open, suspend, and resume. Every field is
// nil-safe (obs instruments and metrics.Breakdown record nothing through
// nil), so instrumentation call sites stay unconditional.
type ctrlObs struct {
	log *obs.Logger
	met *obs.Registry
	// tr records migration/connection spans; nil-safe like everything
	// else here.
	tr *obs.Tracer

	opens, openErrors       *obs.Counter
	accepts                 *obs.Counter
	suspends, suspendErrors *obs.Counter
	resumes, resumeErrors   *obs.Counter
	closes                  *obs.Counter
	failures                *obs.Counter
	drainsGraceful          *obs.Counter
	drainsUngraceful        *obs.Counter
	departs, arrivals       *obs.Counter
	connsShipped            *obs.Counter
	fsmTransitions          *obs.Counter
	connRecoveries          *obs.Counter
	transportLost           *obs.Counter

	dataFrames  *obs.Counter
	dataFlushes *obs.Counter
	dataBytes   *obs.Counter

	openMs, suspendMs, resumeMs *obs.Histogram
	recoveryMs                  *obs.Histogram

	openBD, suspendBD, resumeBD *metrics.Breakdown
}

// newCtrlObs resolves the observability configuration. The logger falls
// back to the Logf compatibility shim, then to the standard library
// logger at Info, so diagnostics never vanish silently. Breakdowns are
// created on demand when a metrics registry is present, so the phase
// gauges below always have a source on an instrumented controller.
func newCtrlObs(cfg Config) *ctrlObs {
	lg := cfg.Logger
	if lg == nil {
		if cfg.Logf != nil {
			lg = obs.NewLogger(cfg.Logf, obs.LevelDebug)
		} else {
			lg = obs.NewLogger(log.Printf, obs.LevelInfo)
		}
	}
	if cfg.HostName != "" {
		lg = lg.With("host", cfg.HostName)
	}
	met := cfg.Metrics
	o := &ctrlObs{
		log:              lg,
		met:              met,
		tr:               cfg.Tracer,
		opens:            met.Counter("conn.opens"),
		openErrors:       met.Counter("conn.open_errors"),
		accepts:          met.Counter("conn.accepts"),
		suspends:         met.Counter("conn.suspends"),
		suspendErrors:    met.Counter("conn.suspend_errors"),
		resumes:          met.Counter("conn.resumes"),
		resumeErrors:     met.Counter("conn.resume_errors"),
		closes:           met.Counter("conn.closes"),
		failures:         met.Counter("conn.failures"),
		drainsGraceful:   met.Counter("conn.drains.graceful"),
		drainsUngraceful: met.Counter("conn.drains.ungraceful"),
		departs:          met.Counter("migrate.departs"),
		arrivals:         met.Counter("migrate.arrivals"),
		connsShipped:     met.Counter("migrate.conns_shipped"),
		fsmTransitions:   met.Counter("fsm.transitions"),
		connRecoveries:   met.Counter("fault.conn_recoveries"),
		transportLost:    met.Counter("conn.transport_lost"),
		dataFrames:       met.Counter("data.frames"),
		dataFlushes:      met.Counter("data.flushes"),
		dataBytes:        met.Counter("data.bytes"),
		openMs:           met.Histogram("conn.open_ms"),
		suspendMs:        met.Histogram("conn.suspend_ms"),
		resumeMs:         met.Histogram("conn.resume_ms"),
		recoveryMs:       met.Histogram("fault.recovery_ms"),
		openBD:           cfg.OpenBreakdown,
		suspendBD:        cfg.SuspendBreakdown,
		resumeBD:         cfg.ResumeBreakdown,
	}
	if met != nil {
		if o.openBD == nil {
			o.openBD = metrics.NewBreakdown()
		}
		if o.suspendBD == nil {
			o.suspendBD = metrics.NewBreakdown()
		}
		if o.resumeBD == nil {
			o.resumeBD = metrics.NewBreakdown()
		}
		registerBreakdown(met, "phase.open", o.openBD, metrics.OpenPhases())
		registerBreakdown(met, "phase.suspend", o.suspendBD, metrics.SuspendPhases())
		registerBreakdown(met, "phase.resume", o.resumeBD, metrics.ResumePhases())
	}
	return o
}

// registerBreakdown exposes a breakdown's accumulated per-phase times as
// gauge funcs, in milliseconds.
func registerBreakdown(met *obs.Registry, prefix string, bd *metrics.Breakdown, phases []metrics.Phase) {
	for _, p := range phases {
		p := p
		met.Func(prefix+"."+string(p)+"_ms", func() float64 {
			return float64(bd.Get(p)) / float64(time.Millisecond)
		})
	}
}

// registerControllerGauges exposes the controller's load and its control
// channel's RUDP counters in the registry, so control-channel
// retransmission health appears in /metrics without extra plumbing in
// callers.
func (ctrl *Controller) registerGauges() {
	met := ctrl.obs.met
	if met == nil {
		return
	}
	met.Func("conn.resident", func() float64 {
		return float64(ctrl.tab.count())
	})
	met.Func("conn.listeners", func() float64 {
		ctrl.mu.Lock()
		defer ctrl.mu.Unlock()
		return float64(len(ctrl.listeners))
	})
	met.Func("agents.migrating", func() float64 {
		return float64(ctrl.tab.migratingCount())
	})
	met.Func("transport.active", func() float64 {
		transports, _ := ctrl.transportCounts()
		return float64(transports)
	})
	met.Func("transport.streams", func() float64 {
		_, streams := ctrl.transportCounts()
		return float64(streams)
	})
	met.Func("data.pool_hits", func() float64 {
		hits, _ := wire.PoolStats()
		return float64(hits)
	})
	met.Func("data.pool_misses", func() float64 {
		_, misses := wire.PoolStats()
		return float64(misses)
	})
	met.Func("data.pool_hit_rate", func() float64 {
		hits, misses := wire.PoolStats()
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})
	registerRUDP(met, ctrl.ep)
}

// registerRUDP registers a reliable-UDP endpoint's existing Stats
// counters as snapshot-time funcs.
func registerRUDP(met *obs.Registry, ep *rudp.Endpoint) {
	stat := func(pick func(rudp.Stats) uint64) func() float64 {
		return func() float64 { return float64(pick(ep.Stats())) }
	}
	met.Func("rudp.requests_sent", stat(func(s rudp.Stats) uint64 { return s.RequestsSent }))
	met.Func("rudp.retransmits", stat(func(s rudp.Stats) uint64 { return s.Retransmits }))
	met.Func("rudp.responses_served", stat(func(s rudp.Stats) uint64 { return s.ResponsesServed }))
	met.Func("rudp.duplicate_requests", stat(func(s rudp.Stats) uint64 { return s.DuplicateRequests }))
	met.Func("rudp.handler_invoked", stat(func(s rudp.Stats) uint64 { return s.HandlerInvoked }))
	met.Func("rudp.packets_dropped", stat(func(s rudp.Stats) uint64 { return s.PacketsDropped }))
}

// olog emits one controller-scoped line, silenced once Close begins (the
// sink may be a testing.T that must not be used after the test ends).
func (ctrl *Controller) olog(lv obs.Level, format string, args ...any) {
	if ctrl.closing.Load() {
		return
	}
	ctrl.obs.log.Logf(lv, format, args...)
}

// olog emits one connection-scoped line carrying the conn id, current
// FSM state, and peer agent as structured fields.
func (s *Socket) olog(lv obs.Level, format string, args ...any) {
	ctrl := s.ctrl
	if ctrl.closing.Load() || !ctrl.obs.log.Enabled(lv) {
		return
	}
	ctrl.obs.log.
		With("conn", s.id).
		With("state", s.m.State()).
		With("peer", s.remoteAgent).
		Logf(lv, format, args...)
}

// observeFSM installs the observability hooks on a socket's state
// machine: the aggregate and per-edge transition counters, a debug line
// per transition, and — when a traced operation (suspend, resume) is in
// flight on the socket — a timestamped annotation of the edge on its span.
func (s *Socket) observeFSM() {
	o := s.ctrl.obs
	if o.met == nil && o.tr == nil && !o.log.Enabled(obs.LevelDebug) {
		return
	}
	// The observer fires from step(), which runs under s.mu, so traceSpan
	// is read directly rather than through an accessor.
	s.m.SetObserver(func(tr fsm.Transition) {
		o.fsmTransitions.Inc()
		o.met.Counter("fsm.transition." + tr.From.String() + "->" + tr.To.String()).Inc()
		if sp := s.traceSpan; sp != nil {
			sp.Annotate(fmt.Sprintf("fsm %s->%s @%s", tr.From, tr.To, tr.At.UTC().Format("15:04:05.000000")))
		}
		if o.log.Enabled(obs.LevelDebug) && !s.ctrl.closing.Load() {
			o.log.With("conn", s.id).Debugf("fsm %s --[%s]--> %s", tr.From, tr.Event, tr.To)
		}
	})
}

// drainTimed runs drainAndClose, charging its elapsed time to the
// suspend breakdown's drain phase.
func (s *Socket) drainTimed() {
	start := time.Now()
	s.drainAndClose()
	s.ctrl.obs.suspendBD.Add(metrics.PhaseDrain, time.Since(start))
}
