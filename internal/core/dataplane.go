package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"naplet/internal/fsm"
	"naplet/internal/timerwheel"
	"naplet/internal/transport"
	"naplet/internal/wire"
)

// This file is the connection's data plane: ownership of the data socket
// (a transport stream, or a raw TCP socket on the legacy path), the reader
// and background-flusher goroutines, the receive buffer and send log with
// their pooled payloads, and the suspend-time drain. The control-plane
// exchanges that decide WHEN these run (suspend/resume/close) live in
// ops.go; the socket's identity and lifecycle bookkeeping stay in conn.go.

// Limits of the per-connection buffers.
const (
	// maxRecvBuffer bounds the receive-side message buffer; when full, the
	// reader goroutine stops pulling from the socket so transport flow
	// control pushes back on the sender. The bound is ignored while
	// draining for a suspend — everything in flight must be captured.
	maxRecvBuffer = 4 << 20
	// maxSendLog bounds the retransmission log kept for failure recovery.
	// A graceful suspend clears the log (the drain handshake proves
	// delivery); the cap only matters between suspends.
	maxSendLog = 4 << 20
	// coalesceFlushBytes is the write-coalescing high-water mark: a write
	// that leaves at least this much encoded data in the frame writer's
	// buffer flushes inline instead of waiting for the background flusher,
	// bounding both buffer occupancy and the data the flusher syscalls per
	// wakeup. It stays below the frame writer's buffer so bufio never
	// force-flushes mid-frame on its own schedule.
	coalesceFlushBytes = 32 << 10
	// pumpBatchFrames bounds the frames one pump pass decodes before
	// re-checking the receive budget, so a firehose peer cannot pin a pool
	// worker or blow far past maxRecvBuffer between checks.
	pumpBatchFrames = 32
)

// installSocket adopts a fresh data socket: retransmits anything the peer
// reports missing, recreates the framed streams, and starts the reader.
// Callers transition the state machine afterwards. Network emulation
// wrapping happens at the shared transport (per host pair), not here.
func (s *Socket) installSocket(sock net.Conn, peerHasUpTo uint64) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	s.mu.Lock()
	// Trim acknowledged frames, then collect what the peer is missing.
	s.trimSendLogLocked(peerHasUpTo)
	var missing []bufEntry
	if len(s.sendLog) > 0 && s.sendLog[0].Seq > peerHasUpTo+1 {
		s.mu.Unlock()
		sock.Close()
		return fmt.Errorf("%w: peer has up to %d, log starts at %d",
			ErrUnrecoverable, peerHasUpTo, s.sendLog[0].Seq)
	}
	missing = append(missing, s.sendLog...)
	// The shallow copy above shares payload buffers with the log; pin them
	// against pool recycling (a concurrent control-plane trim) until the
	// retransmit writes below are done.
	s.retxPending = len(missing) > 0
	s.mu.Unlock()

	// Retransmits are a forced write barrier: everything goes to the wire
	// before the new generation starts coalescing application writes.
	bw := bufio.NewWriter(sock)
	for _, e := range missing {
		if err := wire.WriteFrame(bw, wire.Frame{Seq: e.Seq, Flags: wire.FlagData, Payload: e.Payload}); err != nil {
			sock.Close()
			s.clearRetxPending()
			return fmt.Errorf("napletsocket: retransmitting frame %d: %w", e.Seq, err)
		}
	}
	if err := bw.Flush(); err != nil {
		sock.Close()
		s.clearRetxPending()
		return fmt.Errorf("napletsocket: flushing retransmits: %w", err)
	}

	s.mu.Lock()
	s.retxPending = false
	s.stopFlusherLocked()
	s.sock = sock
	s.gen++
	gen := s.gen
	s.fw = wire.NewFrameWriter(sock, s.nextSendSeq)
	// Transport streams run the goroutine-free event path: the stream's
	// readable/writable callbacks drive pump and flush passes on the
	// controller's shared worker pool, so a host with 100k connections
	// runs O(pool) data-plane goroutines, not O(conns). Raw sockets
	// (tests, legacy paths) keep the dedicated reader/flusher pair.
	st, eventMode := sock.(*transport.Stream)
	if eventMode {
		s.pumpSrc = st
		s.pumpDec = &wire.FrameDecoder{}
		s.pumpPaused = false
		s.flushCh = nil
	} else {
		s.pumpSrc = nil
		s.pumpDec = nil
		s.flushCh = make(chan struct{}, 1)
	}
	s.suspending = false
	s.peerFlushSeen = false
	s.drained = false
	s.failing = false
	s.localSuspended = false
	s.remoteSuspended = false
	s.susResReceived = false
	s.peerResumeParked = false
	s.sockInstalled = true
	s.cond.Broadcast()
	fw, flushCh := s.fw, s.flushCh
	s.mu.Unlock()

	if eventMode {
		// Registration fires the hook immediately if data or credit is
		// already pending, so nothing that raced in before this point is
		// lost.
		st.SetReadable(s.schedulePump)
		st.SetWritable(s.scheduleFlush)
		return nil
	}
	go s.readerLoop(sock, gen)
	go s.flusherLoop(fw, sock, gen, flushCh)
	return nil
}

// schedulePump requests a pump pass for this socket on the shared worker
// pool. Level-triggered and deduped; safe from any goroutine, including
// the transport read loop and callers holding s.mu.
func (s *Socket) schedulePump() {
	s.pumpReq.Store(true)
	s.ctrl.dp.enqueue(s)
}

// scheduleFlush requests a flush pass on the shared worker pool.
func (s *Socket) scheduleFlush() {
	s.flushReq.Store(true)
	s.ctrl.dp.enqueue(s)
}

// pumpEvent is one event-driven pump pass: decode every frame the stream
// has fully buffered into the receive buffer, without ever blocking on
// the network. It stops when the stream runs dry, when the receive
// buffer is over budget (backpressure: not reading means the stream
// grants the peer no more flow-control credit), or when the stream
// reports a terminal condition. pumpMu single-flights passes so a
// re-enqueue during a pass cannot interleave decodes.
func (s *Socket) pumpEvent() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	for {
		s.mu.Lock()
		st, gen, dec := s.pumpSrc, s.gen, s.pumpDec
		if st == nil || s.closed {
			s.mu.Unlock()
			return
		}
		if s.recvBytes > maxRecvBuffer && !s.suspending {
			s.pumpPaused = true
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		batch, err := pumpDecode(st, dec)
		if len(batch) > 0 {
			if !s.enqueueFrames(gen, batch, false) {
				return
			}
		}
		if err != nil {
			s.readerExit(gen, err)
			return
		}
		if len(batch) == 0 {
			// Stream ran dry mid-pass with no decode error: either it is
			// simply idle again (a later readable event re-arms us), or it
			// ended — EOF, reset, or a FIN that cut a frame short.
			if termErr, terminal := st.TermStatus(); terminal {
				if termErr == io.EOF && dec.Partial() {
					termErr = io.ErrUnexpectedEOF
				}
				dec.Release()
				s.readerExit(gen, termErr)
			}
			return
		}
	}
}

// pumpDecode pulls one bounded batch of frames off the stream's user-space
// buffer. It never blocks: the decoder only consumes bytes the stream
// already holds, parking partial-frame state between passes.
func pumpDecode(st *transport.Stream, dec *wire.FrameDecoder) ([]wire.Frame, error) {
	var batch []wire.Frame
	for len(batch) < pumpBatchFrames {
		f, ok, err := dec.Next(st)
		if err != nil {
			return batch, err
		}
		if !ok {
			break
		}
		batch = append(batch, f)
	}
	return batch, nil
}

// maybeResumePumpLocked restarts the event-driven pump after receive-side
// backpressure clears: the application drained below the budget, or a
// suspend drain lifted the bound. Caller holds mu.
func (s *Socket) maybeResumePumpLocked() {
	if s.pumpPaused && (s.recvBytes <= maxRecvBuffer || s.suspending) {
		s.pumpPaused = false
		s.schedulePump()
	}
}

// flushEvent is one event-driven flush pass: detach the frame writer's
// coalesced batch and push it to the stream. A batch the stream lacks
// send credit for is handed to a transient goroutine that rides out the
// stall holding flushMu, so pool workers never block on a slow peer.
func (s *Socket) flushEvent() {
	s.writeMu.Lock()
	s.mu.Lock()
	st, fw, sock := s.pumpSrc, s.fw, s.sock
	closed := s.closed
	s.mu.Unlock()
	if closed || st == nil || fw == nil || sock == nil || fw.Buffered() == 0 {
		s.writeMu.Unlock()
		return
	}
	if !s.flushMu.TryLock() {
		// A flush (possibly credit-stalled) is already in flight; it
		// re-schedules on completion, so this pass just stands down.
		s.writeMu.Unlock()
		return
	}
	batch := fw.Take(s.flushSpare)
	s.flushSpare = nil
	// writeMu releases before the write: writers coalesce the next batch
	// while this one's syscall is in flight, exactly like flusherLoop did.
	s.writeMu.Unlock()
	if st.SendWindow() < len(batch) {
		go s.flushFinish(sock, batch)
		return
	}
	s.flushFinish(sock, batch)
}

// flushFinish writes one detached batch and releases flushMu (held by the
// caller), then re-arms the flush event for anything that accumulated
// while the write was in flight.
func (s *Socket) flushFinish(sock net.Conn, batch []byte) {
	_, err := sock.Write(batch)
	s.flushSpare = batch
	s.flushMu.Unlock()
	if err != nil {
		s.mu.Lock()
		s.failLocked(err)
		s.mu.Unlock()
		return
	}
	s.ctrl.obs.dataFlushes.Inc()
	s.scheduleFlush()
}

func (s *Socket) clearRetxPending() {
	s.mu.Lock()
	s.retxPending = false
	s.mu.Unlock()
}

// stopFlusherLocked ends the current generation's background flusher.
// Caller holds mu.
func (s *Socket) stopFlusherLocked() {
	if s.flushCh != nil {
		close(s.flushCh)
		s.flushCh = nil
	}
}

// signalFlushLocked nudges the background flusher: buffered frames are
// waiting in the frame writer. Caller holds mu (which serializes against
// stopFlusherLocked's close). On the event path the socket is enqueued on
// the worker pool; on the legacy path the channel has capacity one, so a
// pending signal already covers us.
func (s *Socket) signalFlushLocked() {
	if s.pumpSrc != nil {
		s.scheduleFlush()
		return
	}
	if s.flushCh == nil {
		return
	}
	select {
	case s.flushCh <- struct{}{}:
	default:
	}
}

// flusherLoop drains the frame writer's coalescing buffer for one data
// socket generation. Writers buffer frames and signal; the flusher detaches
// the accumulated batch under writeMu but performs the socket write under
// flushMu only, so while one batch's syscall is in flight the writers are
// already encoding the next — a TTCP-style stream pays one syscall per
// batch instead of per frame, and the batches grow on their own whenever
// the kernel is slower than the writers. The loop ends when the
// generation's flush channel closes or the socket moves on.
func (s *Socket) flusherLoop(fw *wire.FrameWriter, sock net.Conn, gen int, ch chan struct{}) {
	var spare []byte
	for range ch {
		s.writeMu.Lock()
		s.mu.Lock()
		stale := gen != s.gen || s.fw != fw || s.closed
		s.mu.Unlock()
		if stale {
			s.writeMu.Unlock()
			return
		}
		if fw.Buffered() == 0 {
			s.writeMu.Unlock()
			continue
		}
		batch := fw.Take(spare)
		// Pin the write slot before releasing writeMu: batches must reach
		// the socket in take order.
		s.flushMu.Lock()
		s.writeMu.Unlock()
		_, err := sock.Write(batch)
		s.flushMu.Unlock()
		spare = batch
		if err != nil {
			s.mu.Lock()
			s.failLocked(err)
			s.mu.Unlock()
			return
		}
		s.ctrl.obs.dataFlushes.Inc()
	}
}

// frameSource is the byte source readerLoop decodes frames from: a reader
// whose undelivered backlog is visible, so complete frames already
// received can join a batch without risking a blocking read mid-batch.
type frameSource interface {
	io.Reader
	wire.PeekReader
}

// readerLoop pulls frames off one data-socket generation into the receive
// buffer until the socket ends — gracefully (peer flushed for a suspend) or
// not (failure). Frames are enqueued a batch at a time: after the blocking
// read that starts a batch, every complete frame already sitting in the
// read buffer joins it, so a coalesced burst from the peer costs one lock
// acquisition and one wakeup instead of one per frame.
func (s *Socket) readerLoop(sock net.Conn, gen int) {
	// A transport stream already queues whole received segments in user
	// space, so frames decode straight off it — one copy, segment to frame
	// payload. Wrapping it in another buffered reader would re-copy every
	// byte, which under the race detector's memory-range instrumentation
	// costs more than the decode itself. Plain sockets (tests, legacy
	// paths) still get a buffered reader for cheap header reads.
	var br frameSource
	if fs, ok := sock.(frameSource); ok {
		br = fs
	} else {
		br = bufio.NewReaderSize(sock, 64<<10)
	}
	var batch []wire.Frame
	for {
		f, err := wire.ReadFramePooled(br)
		if err != nil {
			s.readerExit(gen, err)
			return
		}
		batch = append(batch[:0], f)
		for wire.FrameBuffered(br) {
			f, err = wire.ReadFramePooled(br)
			if err != nil {
				break
			}
			batch = append(batch, f)
		}
		if !s.enqueueFrames(gen, batch, true) {
			return
		}
		if err != nil {
			s.readerExit(gen, err)
			return
		}
	}
}

// enqueueFrames delivers one batch of frames into the receive buffer under
// a single lock acquisition. It reports false when the socket generation
// ended underneath the reader; undelivered pooled payloads are recycled.
// block selects the flow-control style: the dedicated reader goroutine
// waits in place when the buffer is over budget; the event-driven pump
// must never block a pool worker, so it enqueues the (already bounded)
// batch and stops pulling from the stream instead.
func (s *Socket) enqueueFrames(gen int, batch []wire.Frame, block bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	enqueued := false
	for i, f := range batch {
		if gen != s.gen || s.closed {
			recycleFrames(batch[i:])
			if enqueued {
				s.cond.Broadcast()
			}
			return false
		}
		switch {
		case f.IsFlush():
			s.peerFlushSeen = true
			s.peerFlushSeq = f.Seq
		case f.IsData():
			// Flow control: hold off when the application is behind —
			// except while draining for a suspend, when everything in
			// flight must be captured into the buffer.
			for block && s.recvBytes > maxRecvBuffer && !s.suspending && !s.closed && gen == s.gen {
				if enqueued {
					s.cond.Broadcast()
					enqueued = false
				}
				s.cond.Wait()
			}
			if gen != s.gen || s.closed {
				recycleFrames(batch[i:])
				if enqueued {
					s.cond.Broadcast()
				}
				return false
			}
			// Sequence-number dedup makes redelivery idempotent.
			if f.Seq > s.lastEnqueued {
				s.recvBuf = append(s.recvBuf, bufEntry{Seq: f.Seq, Payload: f.Payload, ViaBuffer: s.suspending})
				s.recvBytes += len(f.Payload)
				s.lastEnqueued = f.Seq
				enqueued = true
			} else if f.Payload != nil {
				// Duplicate from a retransmit: the frame is dropped here, so
				// its pooled buffer can go straight back.
				wire.PutPayload(f.Payload)
			}
		}
	}
	if enqueued {
		s.cond.Broadcast()
	}
	return true
}

// recycleFrames returns a batch's undelivered pooled payloads.
func recycleFrames(fs []wire.Frame) {
	for _, f := range fs {
		if f.Payload != nil {
			wire.PutPayload(f.Payload)
		}
	}
}

// readerExit classifies the end of a socket generation: a completed
// suspend drain, a close, or a failure.
func (s *Socket) readerExit(gen int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen || s.closed {
		return
	}
	st := s.m.State()
	// The peer's orderly teardown (flush marker then half-close) during any
	// suspend or close in progress is a completed drain — even if our own
	// drainAndClose has not started yet (its ACK may still be in flight).
	orderly := s.peerFlushSeen && s.lastEnqueued >= s.peerFlushSeq
	tearingDown := s.suspending || st != fsm.Established
	if orderly && tearingDown {
		s.drained = true
		s.cond.Broadcast()
		return
	}
	if st == fsm.CloseSent || st == fsm.CloseAcked || st == fsm.Closed {
		// A close is in progress; EOF is expected, not a failure.
		s.drained = true
		s.cond.Broadcast()
		return
	}
	// Unexpected end while established (or a botched drain): degrade to
	// SUSPENDED and let failure recovery re-resume (extension; fsm Fail).
	s.failLocked(err)
}

// failLocked moves an established connection to SUSPENDED after a data
// socket failure and schedules recovery. Caller holds mu.
func (s *Socket) failLocked(cause error) {
	if s.failing || s.closed {
		return
	}
	if s.m.State() != fsm.Established {
		// Failures in other states are handled by the ops that own them.
		s.cond.Broadcast()
		return
	}
	s.failing = true
	if s.failedAt.IsZero() {
		s.failedAt = time.Now()
	}
	s.step(fsm.Fail)
	s.stopFlusherLocked()
	s.pumpSrc = nil
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
		s.fw = nil
	}
	s.sockInstalled = false
	s.cond.Broadcast()
	s.ctrl.obs.failures.Inc()
	if errors.Is(cause, transport.ErrTransportLost) {
		// The shared transport died past its resume window (or resumption
		// is disabled): this is a host-pair event, not a stream-level
		// reset, and every sibling connection on the pair degrades with
		// us. The typed error keeps the two failure modes countable apart.
		s.ctrl.obs.transportLost.Inc()
		s.ctrl.logf("conn %s: shared transport lost (%v); degraded to SUSPENDED", s.id, cause)
	} else {
		s.ctrl.logf("conn %s: data socket failed (%v); degraded to SUSPENDED", s.id, cause)
	}
	if s.ctrl.cfg.DisableFailureResume {
		return
	}
	s.scheduleFailureResume(s.ctrl.cfg.failureResumeDelay(s.highPriority))
}

// scheduleFailureResume arms a failure-recovery attempt on the shared
// timer wheel: a suspended-by-failure connection costs one wheel entry,
// not a parked goroutine. The high-priority side fires first; the
// low-priority side is a late fallback, and the resume-race rules sort
// out collisions. While the peer stays unreachable (crashed and not yet
// restarted, or partitioned away) attempts re-arm with capped exponential
// backoff, so the connection heals as soon as the peer returns rather
// than stranding after one failed try. The wheel callback only inspects
// state; the resume handshake itself runs on a transient goroutine.
func (s *Socket) scheduleFailureResume(delay time.Duration) {
	const maxDelay = 5 * time.Second
	timerwheel.AfterFunc(delay, func() {
		select {
		case <-s.ctrl.done:
			return
		default:
		}
		s.mu.Lock()
		stillDown := s.failing && !s.closed && s.m.State() == fsm.Suspended
		s.mu.Unlock()
		if !stillDown {
			return
		}
		next := delay * 2
		if next > maxDelay {
			next = maxDelay
		}
		if s.ctrl.isMigrating(s.localAgent) {
			s.scheduleFailureResume(next)
			return
		}
		go func() {
			err := s.Resume()
			if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrMigrated) {
				return
			}
			s.ctrl.logf("conn %s: failure resume: %v", s.id, err)
			s.scheduleFailureResume(next)
		}()
	})
}

// Read reads application bytes, serving the migrated buffer before the live
// socket. It blocks transparently across suspensions and returns io.EOF
// once the connection is closed and the buffer is empty. One call drains as
// many whole buffered messages into p as fit, so a fast producer does not
// cost one lock round trip per message.
func (s *Socket) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		n := 0
		if len(s.leftover) > 0 {
			if s.leftoverRestored {
				// The tail crossed a migration or crash restore inside the
				// buffer: announce the remainder to the observer as a
				// from-buffer delivery, so the Fig 7 socket-vs-buffer
				// accounting covers leftover bytes too.
				s.leftoverRestored = false
				if obs := s.observer; obs != nil {
					obs(s.leftoverSeq, s.leftover, true)
				}
			}
			c := copy(p, s.leftover)
			s.leftover = s.leftover[c:]
			n = c
			if len(s.leftover) == 0 {
				s.releaseLeftoverLocked()
			}
		}
		for n < len(p) && len(s.recvBuf) > 0 {
			e := s.recvBuf[0]
			s.recvBuf[0] = bufEntry{} // drop the slot's payload reference
			s.recvBuf = s.recvBuf[1:]
			s.recvBytes -= len(e.Payload)
			if obs := s.observer; obs != nil {
				obs(e.Seq, e.Payload, e.ViaBuffer)
			}
			c := copy(p[n:], e.Payload)
			n += c
			if c < len(e.Payload) {
				s.leftover = e.Payload[c:]
				s.leftoverBack = e.Payload
				s.leftoverSeq = e.Seq
				s.leftoverBuf = e.ViaBuffer
			} else {
				// Fully copied out: the pooled buffer has no owner left.
				wire.PutPayload(e.Payload)
			}
		}
		if n > 0 {
			s.maybeResumePumpLocked()
			s.cond.Broadcast() // reader may be flow-controlled
			return n, nil
		}
		if s.closed {
			if s.closeErr != nil {
				return 0, s.closeErr
			}
			return 0, io.EOF
		}
		s.cond.Wait()
	}
}

// releaseLeftoverLocked returns a fully drained leftover tail's backing
// buffer to the payload pool and clears its provenance. Caller holds mu.
func (s *Socket) releaseLeftoverLocked() {
	s.leftover = nil
	s.leftoverBuf = false
	s.leftoverRestored = false
	s.leftoverSeq = 0
	if s.leftoverBack != nil {
		wire.PutPayload(s.leftoverBack)
		s.leftoverBack = nil
	}
}

// ReadMsg reads one whole message (one writer-side WriteMsg / Write call's
// frame), preserving message boundaries. It must not be mixed with Read on
// the same socket. Ownership of the returned slice transfers to the caller;
// it is never recycled by the socket.
func (s *Socket) ReadMsg() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.recvBuf) > 0 {
			e := s.recvBuf[0]
			s.recvBuf[0] = bufEntry{} // drop the slot's payload reference
			s.recvBuf = s.recvBuf[1:]
			s.recvBytes -= len(e.Payload)
			s.maybeResumePumpLocked()
			s.cond.Broadcast()
			if obs := s.observer; obs != nil {
				obs(e.Seq, e.Payload, e.ViaBuffer)
			}
			return e.Payload, nil
		}
		if s.closed {
			if s.closeErr != nil {
				return nil, s.closeErr
			}
			return nil, io.EOF
		}
		s.cond.Wait()
	}
}

// Write sends application bytes, splitting them into sequence-numbered
// frames. It blocks transparently while the connection is suspended and
// returns only after every frame is handed to the transport.
func (s *Socket) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > wire.MaxFramePayload {
			chunk = chunk[:wire.MaxFramePayload]
		}
		if err := s.writeFrame(chunk); err != nil {
			return total, err
		}
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// WriteMsg sends one payload as exactly one frame, preserving message
// boundaries for ReadMsg.
func (s *Socket) WriteMsg(p []byte) error {
	if len(p) > wire.MaxFramePayload {
		return fmt.Errorf("napletsocket: message of %d bytes exceeds frame limit %d", len(p), wire.MaxFramePayload)
	}
	return s.writeFrame(p)
}

// writeFrame sends one frame, waiting out suspensions and retrying across
// failures; the frame's sequence number is fixed on first attempt so a
// retry after a failure cannot duplicate delivery.
func (s *Socket) writeFrame(p []byte) error {
	for {
		// Wait until the connection is writable.
		s.mu.Lock()
		for !(s.m.State() == fsm.Established && s.sock != nil && !s.suspending) {
			if s.closed {
				err := s.closedErrLocked()
				s.mu.Unlock()
				return err
			}
			s.cond.Wait()
		}
		s.mu.Unlock()

		s.writeMu.Lock()
		s.mu.Lock()
		writable := s.m.State() == fsm.Established && s.sock != nil && !s.suspending
		if s.closed {
			err := s.closedErrLocked()
			s.mu.Unlock()
			s.writeMu.Unlock()
			return err
		}
		if !writable {
			s.mu.Unlock()
			s.writeMu.Unlock()
			continue
		}
		fw := s.fw
		s.mu.Unlock()

		// Coalescing: encode into the frame writer's buffer without a
		// syscall. Large accumulations flush inline (bounding buffer
		// occupancy); otherwise the background flusher batches this frame
		// with its neighbours into one kernel write.
		seq, err := fw.WriteDataBuffered(p)
		if err == nil {
			o := s.ctrl.obs
			o.dataFrames.Inc()
			o.dataBytes.Add(uint64(len(p)))
			var flushErr error
			if fw.Buffered() >= coalesceFlushBytes {
				s.flushMu.Lock()
				flushErr = fw.Flush()
				s.flushMu.Unlock()
				if flushErr == nil {
					o.dataFlushes.Inc()
				}
			}
			s.mu.Lock()
			s.nextSendSeq = seq + 1
			s.appendSendLogLocked(seq, p)
			if flushErr == nil && fw.Buffered() > 0 {
				s.signalFlushLocked()
			}
			s.mu.Unlock()
			s.writeMu.Unlock()
			if flushErr != nil {
				// The frame is journaled in the send log; recovery
				// retransmits it, so the write itself has succeeded.
				s.mu.Lock()
				s.failLocked(flushErr)
				s.mu.Unlock()
			}
			return nil
		}
		s.writeMu.Unlock()
		// The socket died under us before the frame was logged: degrade and
		// retry after recovery. The peer dedups by sequence number, so
		// rewriting is safe.
		s.mu.Lock()
		s.failLocked(err)
		s.mu.Unlock()
	}
}

// appendSendLogLocked copies p into a pooled buffer and journals it for
// retransmission. Caller holds mu AND writeMu (writeFrame's path), so no
// retransmit can be walking the log concurrently and evicted buffers can
// go straight back to the pool.
func (s *Socket) appendSendLogLocked(seq uint64, p []byte) {
	cp := wire.GetPayload(len(p))
	copy(cp, p)
	s.sendLog = append(s.sendLog, bufEntry{Seq: seq, Payload: cp})
	s.sendLogSize += len(cp)
	if s.sendLogSize <= maxSendLog {
		return
	}
	// Evict in bulk with hysteresis: dropping to 3/4 of the cap means the
	// in-place compaction below runs once per maxSendLog/4 logged bytes
	// rather than on every write, and reusing the backing array avoids the
	// allocate-and-zero churn that per-write eviction causes on a log tens
	// of thousands of entries long.
	evict := 0
	for s.sendLogSize > maxSendLog*3/4 && evict < len(s.sendLog)-1 {
		s.sendLogSize -= len(s.sendLog[evict].Payload)
		wire.PutPayload(s.sendLog[evict].Payload)
		evict++
	}
	if evict > 0 {
		s.compactSendLogLocked(evict)
	}
}

// compactSendLogLocked removes the first n entries by copying the live
// tail down and zeroing the vacated slots, so evicted payloads are not
// pinned by the backing array for the life of the connection.
func (s *Socket) compactSendLogLocked(n int) {
	kept := copy(s.sendLog, s.sendLog[n:])
	for j := kept; j < len(s.sendLog); j++ {
		s.sendLog[j] = bufEntry{}
	}
	s.sendLog = s.sendLog[:kept]
}

// trimSendLogLocked drops frames the peer confirmed receiving. Trimmed
// buffers return to the pool unless a retransmit snapshot may still be
// reading them (retxPending), in which case they are only unreferenced and
// the garbage collector reclaims them.
func (s *Socket) trimSendLogLocked(peerHasUpTo uint64) {
	i := 0
	for i < len(s.sendLog) && s.sendLog[i].Seq <= peerHasUpTo {
		s.sendLogSize -= len(s.sendLog[i].Payload)
		if !s.retxPending {
			wire.PutPayload(s.sendLog[i].Payload)
		}
		i++
	}
	if i > 0 {
		s.compactSendLogLocked(i)
	}
}

// drainAndClose executes the suspend-side teardown of the data socket:
// flush marker, half-close, drain the inbound direction to EOF into the
// buffer, then close. It is idempotent; a second call while suspended is a
// no-op. On a drain timeout the socket is failed rather than suspended
// cleanly (the send log covers the gap at resume). The half-close works
// identically for transport streams (Stream.CloseWrite sends MuxFin) and
// raw TCP sockets, so the FLUSH-barrier exactly-once semantics survive the
// mux unchanged.
func (s *Socket) drainAndClose() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.mu.Lock()
	if s.sock == nil {
		s.mu.Unlock()
		return
	}
	s.suspending = true
	sock := s.sock
	// The drain must capture everything in flight: lift receive-side
	// backpressure so a paused pump resumes pulling immediately.
	s.maybeResumePumpLocked()
	s.cond.Broadcast()
	s.mu.Unlock()

	// Write the flush marker after any in-flight application frame.
	s.writeMu.Lock()
	s.mu.Lock()
	fw := s.fw
	s.mu.Unlock()
	var flushErr error
	if fw != nil {
		s.flushMu.Lock()
		flushErr = fw.WriteFlush()
		s.flushMu.Unlock()
	}
	s.writeMu.Unlock()
	if flushErr == nil {
		if cw, ok := sock.(interface{ CloseWrite() error }); ok {
			flushErr = cw.CloseWrite()
		}
	}

	// Wait for the reader to drain the peer's flush; bound the wait so a
	// dead peer cannot wedge a migration. The wait is event-driven: every
	// state change broadcasts, so the loop sleeps until the drain completes
	// (or the deadline timer fires once), not on a polling interval.
	deadline := time.Now().Add(s.ctrl.cfg.drainTimeout())
	s.mu.Lock()
	for !s.drained && !s.closed && s.sock != nil && flushErr == nil {
		if !waitCond(s.cond, time.Until(deadline)) {
			break
		}
	}
	graceful := s.drained
	s.stopFlusherLocked()
	s.pumpSrc = nil
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
		s.fw = nil
	}
	s.sockInstalled = false
	s.suspending = false
	s.drained = false
	s.peerFlushSeen = false
	if graceful {
		// Drain handshake proves the peer received everything we sent.
		s.releaseSendLogLocked()
		s.ctrl.obs.drainsGraceful.Inc()
	} else {
		s.ctrl.obs.drainsUngraceful.Inc()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// releaseSendLogLocked clears the send log, recycling its buffers unless a
// retransmit snapshot may still hold references. Caller holds mu.
func (s *Socket) releaseSendLogLocked() {
	if !s.retxPending {
		for i := range s.sendLog {
			wire.PutPayload(s.sendLog[i].Payload)
			s.sendLog[i] = bufEntry{}
		}
	}
	s.sendLog = nil
	s.sendLogSize = 0
}

// condTimerFires counts deadline-timer wakeups of waitCond, for the
// regression test asserting the data plane performs no periodic wakeups.
var condTimerFires atomic.Uint64

// waitCond waits on c until a broadcast or until d elapses, implemented
// with a one-shot entry on the shared timer wheel because sync.Cond has no
// native timed wait. It reports false when d was already non-positive
// (deadline passed). The wheel entry fires at most once per call — at or
// just after the caller's true deadline — so a blocked operation costs
// zero wakeups until something actually happens, and 100k blocked
// operations share one timer goroutine instead of owning one runtime
// timer each. A wakeup broadcast that lands after the wait already
// returned is a harmless spurious broadcast (all cond users loop).
func waitCond(c *sync.Cond, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	t := timerwheel.AfterFunc(d, func() {
		c.L.Lock()
		condTimerFires.Add(1)
		c.Broadcast()
		c.L.Unlock()
	})
	c.Wait()
	t.Stop()
	return true
}
