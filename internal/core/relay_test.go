package core

import (
	"io"
	"net"
	"testing"
	"time"

	"naplet/internal/netem"
	"naplet/internal/obs"
	"naplet/internal/relay"
)

// TestMigrationSustainedThroughRelayNAT is the WAN acceptance scenario: every
// host sits behind a default-deny NAT that admits only the relay, so no host
// can dial another's redirector directly. The logical connection must still
// establish, survive a migration, and deliver every byte exactly once —
// entirely over relayed transport legs.
func TestMigrationSustainedThroughRelayNAT(t *testing.T) {
	rs, err := relay.New("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	mets := map[string]*obs.Registry{}
	env := newEnv(t, []string{"h1", "h2", "h3"}, func(cfg *Config) {
		nat := netem.NewNAT()
		nat.Allow(rs.Addr())
		met := obs.NewRegistry()
		mets[cfg.HostName] = met
		cfg.Metrics = met
		cfg.RelayVia = rs.Addr()
		cfg.DialData = nat.WrapDial(func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		})
	})
	// Registration legs come up asynchronously; the rendezvous only works
	// once every host holds one.
	deadline := time.Now().Add(5 * time.Second)
	for rs.Registrations() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d relay registrations, want 3", rs.Registrations())
		}
		time.Sleep(5 * time.Millisecond)
	}

	client, server := env.pair("mover", "h1", "anchor", "h2")

	// The h1<->h2 transport cannot exist except through the relay.
	if got := mets["h1"].Counter("transport.relay_dials").Value(); got < 1 {
		t.Fatalf("h1 transport.relay_dials = %d, want >= 1", got)
	}
	for _, in := range env.hosts["h1"].ctrl.TransportInfos() {
		if !in.Relayed {
			t.Fatalf("h1 transport to %s not marked relayed", in.PeerHost)
		}
	}

	if _, err := client.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	env.migrate("mover", "h1", "h3", 2)

	moved, err := env.hosts["h3"].ctrl.AgentSocket("mover", client.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, moved, server)
	if _, err := moved.Write([]byte("-post")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len("pre-post"))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "pre-post" {
		t.Fatalf("anchor read %q, want \"pre-post\"", got)
	}
	if _, err := server.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, 4)
	if _, err := io.ReadFull(moved, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "back" {
		t.Fatalf("mover read %q, want \"back\"", got)
	}

	// The post-migration h3<->h2 transport is also relayed: the NAT never
	// opened, the rendezvous carried the whole recovery.
	relayed := 0
	for _, in := range env.hosts["h3"].ctrl.TransportInfos() {
		if in.Relayed {
			relayed++
		}
	}
	if relayed == 0 {
		t.Fatal("no relayed transport on the migration target")
	}
	if got := mets["h3"].Counter("transport.relay_dials").Value(); got < 1 {
		t.Fatalf("h3 transport.relay_dials = %d, want >= 1", got)
	}
}
