package trace

import (
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record(1, 1, FromSocket)
	r.Record(2, 2, FromBuffer)
	r.Record(3, 3, FromSocket)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[1].Source != FromBuffer || evs[1].Counter != 2 {
		t.Fatalf("event[1] = %+v", evs[1])
	}
	if got := r.Buffered(); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("buffered = %+v", got)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, 1, FromSocket)
	if r.Events() != nil || r.Buffered() != nil {
		t.Fatal("nil recorder returned events")
	}
	if err := r.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyExactlyOnceInOrder(t *testing.T) {
	ok := NewRecorder()
	for i := uint64(5); i <= 10; i++ {
		ok.Record(i, i, FromSocket)
	}
	if err := ok.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	gap := NewRecorder()
	gap.Record(1, 1, FromSocket)
	gap.Record(3, 3, FromSocket)
	if err := gap.VerifyExactlyOnceInOrder(); err == nil {
		t.Fatal("gap accepted")
	}

	dup := NewRecorder()
	dup.Record(1, 1, FromSocket)
	dup.Record(1, 1, FromBuffer)
	if err := dup.VerifyExactlyOnceInOrder(); err == nil {
		t.Fatal("duplicate accepted")
	}

	reorder := NewRecorder()
	reorder.Record(2, 2, FromSocket)
	reorder.Record(1, 1, FromSocket)
	if err := reorder.VerifyExactlyOnceInOrder(); err == nil {
		t.Fatal("reordering accepted")
	}
}

func TestVerifySingleEvent(t *testing.T) {
	r := NewRecorder()
	r.Record(42, 42, FromBuffer)
	if err := r.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatalf("single-event trace rejected: %v", err)
	}
}

func TestVerifyNonZeroStart(t *testing.T) {
	// Counters need not start at 0 or 1 — a trace recorded mid-stream (for
	// example after an agent reattaches) is judged from its first counter.
	r := NewRecorder()
	for i := uint64(1000); i < 1005; i++ {
		r.Record(i, i, FromSocket)
	}
	if err := r.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatalf("non-zero-start trace rejected: %v", err)
	}
}

func TestVerifyGapAfterDuplicate(t *testing.T) {
	// 1, 1, 3: the duplicate is hit first and must be reported even though
	// a gap follows it.
	r := NewRecorder()
	r.Record(1, 1, FromSocket)
	r.Record(1, 1, FromBuffer)
	r.Record(3, 3, FromSocket)
	err := r.VerifyExactlyOnceInOrder()
	if err == nil {
		t.Fatal("duplicate-then-gap accepted")
	}
	if !strings.Contains(err.Error(), "counter 1 followed 1") {
		t.Fatalf("error blames the wrong event: %v", err)
	}
}

func TestEmptyTraceValid(t *testing.T) {
	if err := NewRecorder().VerifyExactlyOnceInOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestRender(t *testing.T) {
	r := NewRecorder()
	r.Record(1, 7, FromSocket)
	r.Record(2, 8, FromBuffer)
	out := r.Render()
	if !strings.Contains(out, "counter") {
		t.Fatalf("missing header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "7\tsocket") || !strings.Contains(lines[2], "8\tbuffer") {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestSourceString(t *testing.T) {
	if FromSocket.String() != "socket" || FromBuffer.String() != "buffer" {
		t.Fatal("source names wrong")
	}
	if !strings.HasPrefix(Source(9).String(), "Source(") {
		t.Fatal("unknown source name wrong")
	}
}
