// Package trace records per-message delivery events for the reliability
// demonstration of Figure 7 of the paper: which messages a mobile agent
// read straight off the socket stream versus which were held in (and later
// served from) the NapletSocket message buffer across a migration.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Source says where a delivered message came from.
type Source uint8

const (
	// FromSocket means the message was read directly from the live socket
	// stream (the dark dots of Figure 7).
	FromSocket Source = iota + 1
	// FromBuffer means the message was drained into the NapletSocket buffer
	// at suspend time, migrated with the agent, and served from the buffer
	// after resume (the light dots of Figure 7).
	FromBuffer
)

// String names the source.
func (s Source) String() string {
	switch s {
	case FromSocket:
		return "socket"
	case FromBuffer:
		return "buffer"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Event is one recorded delivery.
type Event struct {
	// Seq is the data-stream sequence number of the delivered message.
	Seq uint64
	// Counter is the application-level message counter, when the recording
	// application supplies one (the Figure 7 y-axis); otherwise 0.
	Counter uint64
	// When is the delivery time.
	When time.Time
	// Source is where the bytes came from.
	Source Source
}

// Recorder accumulates delivery events. It is safe for concurrent use. A
// nil *Recorder is valid and records nothing, so instrumentation can stay
// unconditionally in place.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	start  time.Time
}

// NewRecorder returns an empty recorder whose relative timestamps are
// measured from now.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Record appends one delivery event.
func (r *Recorder) Record(seq, counter uint64, src Source) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Seq: seq, Counter: counter, When: time.Now(), Source: src})
	r.mu.Unlock()
}

// Start returns the recorder's epoch.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Events returns a copy of the recorded events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Buffered returns the events served from the buffer.
func (r *Recorder) Buffered() []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Source == FromBuffer {
			out = append(out, e)
		}
	}
	return out
}

// VerifyExactlyOnceInOrder checks the Figure 7 reliability property over
// the recorded application counters: every counter from first to last was
// delivered exactly once, in increasing order. It returns nil when the
// property holds.
func (r *Recorder) VerifyExactlyOnceInOrder() error {
	events := r.Events()
	if len(events) == 0 {
		return nil
	}
	prev := events[0].Counter
	for _, e := range events[1:] {
		// A strict +1 walk covers duplicates too: a re-delivered counter
		// repeats prev (or something earlier) and can never equal prev+1,
		// so it is reported here as an order violation.
		if e.Counter != prev+1 {
			return fmt.Errorf("trace: counter %d followed %d (out of order, gap, or duplicate)", e.Counter, prev)
		}
		prev = e.Counter
	}
	return nil
}

// Render produces the Figure 7 style table: one row per delivery with
// relative time in milliseconds, counter, and source.
func (r *Recorder) Render() string {
	events := r.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].When.Before(events[j].When) })
	var sb strings.Builder
	sb.WriteString("time_ms\tcounter\tsource\n")
	for _, e := range events {
		fmt.Fprintf(&sb, "%.2f\t%d\t%s\n", float64(e.When.Sub(r.Start()))/float64(time.Millisecond), e.Counter, e.Source)
	}
	return sb.String()
}
