// Package naming implements the Naplet agent location service (Section 2.1
// of the paper): a registry mapping agent ids to their current physical
// location, ensuring location-transparent communication between agents. The
// service is consulted only at connection setup — once a NapletSocket
// connection is established, all traffic flows over the connection itself
// and no further lookups are needed.
//
// The registry also keeps per-agent movement traces (Section 3.4 mentions
// keeping records of agent traces), which double as a debugging aid and as
// the data source for migration-pattern statistics.
package naming

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"naplet/internal/obs"
)

// Location is the set of addresses at which an agent's current host can be
// reached.
type Location struct {
	// Host is the human-readable host (agent server) name.
	Host string
	// ControlAddr is the host's reliable-UDP control endpoint.
	ControlAddr string
	// DataAddr is the host's redirector TCP address (data-plane handoff).
	DataAddr string
	// DockAddr is the host's agent docking TCP address.
	DockAddr string
	// MailAddr is the host's post office UDP address (asynchronous
	// persistent communication); empty when the host runs no post office.
	MailAddr string
}

// IsZero reports whether the location is unset.
func (l Location) IsZero() bool { return l == Location{} }

// Record is a registry entry for one agent.
type Record struct {
	AgentID string
	Loc     Location
	// Epoch increases by one on every migration; stale updates (an old host
	// reporting after the agent already moved on) are rejected by epoch.
	Epoch     uint64
	UpdatedAt time.Time
}

// Move is one entry of an agent's movement trace.
type Move struct {
	When  time.Time
	Loc   Location
	Epoch uint64
}

// Errors returned by the service.
var (
	// ErrNotFound reports a lookup for an unregistered agent.
	ErrNotFound = errors.New("naming: agent not found")
	// ErrStale reports an update carrying an epoch not newer than the
	// registered one.
	ErrStale = errors.New("naming: stale location update")
	// ErrExists reports a duplicate registration.
	ErrExists = errors.New("naming: agent already registered")
)

// Resolver is the read side of the location service, all that connection
// setup needs.
type Resolver interface {
	Lookup(ctx context.Context, agentID string) (Record, error)
}

// maxTrace bounds each agent's retained movement history.
const maxTrace = 256

// Service is the in-memory location registry. It is safe for concurrent
// use and implements Resolver.
type Service struct {
	mu      sync.RWMutex
	records map[string]*Record
	traces  map[string][]Move
	// watchers wake blocked WaitFor calls when an agent (re)appears.
	watchers map[string][]chan struct{}
	// ttl, when positive, expires entries not refreshed within it: a
	// crashed host's stale location stops poisoning resume attempts.
	ttl time.Duration
	// now is a test seam.
	now func() time.Time

	// The naming.* counter family; nil (and therefore no-op) until
	// SetMetrics installs a registry.
	lookups, lookupMisses, registers, updates, deregisters *obs.Counter
}

// NewService returns an empty registry.
func NewService() *Service {
	return &Service{
		records:  make(map[string]*Record),
		traces:   make(map[string][]Move),
		watchers: make(map[string][]chan struct{}),
		now:      time.Now,
	}
}

// SetMetrics wires the registry's operation counters (naming.lookups,
// naming.lookup_misses, naming.registers, naming.updates,
// naming.deregisters) into reg. Counters are shared by name, so several
// services (e.g. the shard replicas of a cluster node) feeding one
// registry accumulate into one family.
func (s *Service) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups = reg.Counter("naming.lookups")
	s.lookupMisses = reg.Counter("naming.lookup_misses")
	s.registers = reg.Counter("naming.registers")
	s.updates = reg.Counter("naming.updates")
	s.deregisters = reg.Counter("naming.deregisters")
}

// SetTTL makes entries expire when not refreshed (by Register or Update)
// within d. Zero disables expiry, the default. Expired entries read as
// not found; a re-registration over one continues its epoch sequence, so
// stale-epoch updates from before the expiry stay rejected.
func (s *Service) SetTTL(d time.Duration) {
	s.mu.Lock()
	s.ttl = d
	s.mu.Unlock()
}

// expiredLocked reports whether rec has outlived the TTL.
func (s *Service) expiredLocked(rec *Record) bool {
	return s.ttl > 0 && s.now().Sub(rec.UpdatedAt) > s.ttl
}

// Register adds a new agent at loc with epoch 1. Registering over an
// expired entry succeeds, continuing the expired entry's epoch sequence.
func (s *Service) Register(agentID string, loc Location) error {
	if agentID == "" {
		return errors.New("naming: empty agent id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registers.Inc()
	epoch := uint64(1)
	if old, ok := s.records[agentID]; ok {
		if !s.expiredLocked(old) {
			return fmt.Errorf("%w: %q", ErrExists, agentID)
		}
		epoch = old.Epoch + 1
	}
	now := s.now()
	s.records[agentID] = &Record{AgentID: agentID, Loc: loc, Epoch: epoch, UpdatedAt: now}
	s.appendTraceLocked(agentID, Move{When: now, Loc: loc, Epoch: epoch})
	s.notifyLocked(agentID)
	return nil
}

// Update records a migration: the agent now lives at loc with the given
// epoch, which must be exactly one greater than the registered epoch.
func (s *Service) Update(agentID string, loc Location, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updates.Inc()
	rec, ok := s.records[agentID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, agentID)
	}
	if epoch <= rec.Epoch {
		return fmt.Errorf("%w: have epoch %d, update carries %d", ErrStale, rec.Epoch, epoch)
	}
	rec.Loc = loc
	rec.Epoch = epoch
	rec.UpdatedAt = s.now()
	s.appendTraceLocked(agentID, Move{When: rec.UpdatedAt, Loc: loc, Epoch: epoch})
	s.notifyLocked(agentID)
	return nil
}

// Deregister removes an agent (terminated or lost). The trace is retained.
func (s *Service) Deregister(agentID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deregisters.Inc()
	if _, ok := s.records[agentID]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, agentID)
	}
	delete(s.records, agentID)
	return nil
}

// Lookup implements Resolver. Expired entries read as not found.
func (s *Service) Lookup(_ context.Context, agentID string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.lookups.Inc()
	rec, ok := s.records[agentID]
	if !ok || s.expiredLocked(rec) {
		s.lookupMisses.Inc()
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, agentID)
	}
	return *rec, nil
}

// Apply installs a replicated record verbatim, keeping whichever of the
// existing and incoming entries carries the higher epoch (latest-wins). It
// bypasses the Register/Update transition rules: replication ships
// already-validated state, so a replica only has to converge, not
// re-validate. It reports whether the record was installed.
func (s *Service) Apply(rec Record) bool {
	if rec.AgentID == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.records[rec.AgentID]; ok && old.Epoch >= rec.Epoch && !s.expiredLocked(old) {
		return false
	}
	cp := rec
	s.records[rec.AgentID] = &cp
	s.appendTraceLocked(rec.AgentID, Move{When: rec.UpdatedAt, Loc: rec.Loc, Epoch: rec.Epoch})
	s.notifyLocked(rec.AgentID)
	return true
}

// Remove deletes an agent without the not-found error of Deregister; the
// idempotent form replication needs.
func (s *Service) Remove(agentID string) {
	s.mu.Lock()
	delete(s.records, agentID)
	s.mu.Unlock()
}

// Dump returns a copy of every live record, the full-state transfer used
// to bring a lagging replica back in sync.
func (s *Service) Dump() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.records))
	for _, rec := range s.records {
		if s.expiredLocked(rec) {
			continue
		}
		out = append(out, *rec)
	}
	return out
}

// Stats reports the live record count and the highest epoch held, for the
// /namez debug surface.
func (s *Service) Stats() (records int, maxEpoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.records {
		if s.expiredLocked(rec) {
			continue
		}
		records++
		if rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
	}
	return records, maxEpoch
}

// WaitFor blocks until agentID is registered (or ctx is done) and returns
// its record. It exists so a client can dial an agent that is still being
// launched or is mid-migration.
func (s *Service) WaitFor(ctx context.Context, agentID string) (Record, error) {
	for {
		s.mu.Lock()
		if rec, ok := s.records[agentID]; ok && !s.expiredLocked(rec) {
			r := *rec
			s.mu.Unlock()
			return r, nil
		}
		ch := make(chan struct{})
		s.watchers[agentID] = append(s.watchers[agentID], ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Record{}, ctx.Err()
		}
	}
}

// Trace returns a copy of the agent's movement history, oldest first.
func (s *Service) Trace(agentID string) []Move {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.traces[agentID]
	out := make([]Move, len(t))
	copy(out, t)
	return out
}

// Agents returns the ids of all registered agents, sorted.
func (s *Service) Agents() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.records))
	for id := range s.records {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (s *Service) appendTraceLocked(agentID string, m Move) {
	t := append(s.traces[agentID], m)
	if len(t) > maxTrace {
		t = t[len(t)-maxTrace:]
	}
	s.traces[agentID] = t
}

func (s *Service) notifyLocked(agentID string) {
	for _, ch := range s.watchers[agentID] {
		close(ch)
	}
	delete(s.watchers, agentID)
}
