package naming

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestStaleEntryExpires(t *testing.T) {
	s := NewService()
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.SetTTL(time.Second)

	loc := Location{Host: "h1", ControlAddr: "127.0.0.1:1"}
	if err := s.Register("a", loc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(context.Background(), "a"); err != nil {
		t.Fatalf("fresh lookup: %v", err)
	}

	// The hosting napletd crashes and never refreshes: past the TTL the
	// stale location must stop resolving.
	now = now.Add(1500 * time.Millisecond)
	if _, err := s.Lookup(context.Background(), "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale lookup = %v, want ErrNotFound", err)
	}

	// A recovered host re-registers over the expired entry; the epoch
	// sequence continues so pre-crash stale updates stay rejected.
	loc2 := Location{Host: "h2", ControlAddr: "127.0.0.1:2"}
	if err := s.Register("a", loc2); err != nil {
		t.Fatalf("re-register over expired: %v", err)
	}
	rec, err := s.Lookup(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 2 || rec.Loc.Host != "h2" {
		t.Fatalf("re-registered record = %+v, want epoch 2 at h2", rec)
	}
	if err := s.Update("a", loc, 1); !errors.Is(err, ErrStale) {
		t.Fatalf("pre-crash update = %v, want ErrStale", err)
	}
}

func TestTTLRefreshByUpdate(t *testing.T) {
	s := NewService()
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.SetTTL(time.Second)
	if err := s.Register("a", Location{Host: "h1"}); err != nil {
		t.Fatal(err)
	}
	// Keep updating within the TTL: the entry must never expire.
	for epoch := uint64(2); epoch < 5; epoch++ {
		now = now.Add(800 * time.Millisecond)
		if err := s.Update("a", Location{Host: "h1"}, epoch); err != nil {
			t.Fatalf("update at epoch %d: %v", epoch, err)
		}
	}
	if _, err := s.Lookup(context.Background(), "a"); err != nil {
		t.Fatalf("refreshed entry expired: %v", err)
	}
	// Live (non-expired) entries still reject duplicate registration.
	if err := s.Register("a", Location{Host: "h3"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate register = %v, want ErrExists", err)
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	s := NewService()
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	if err := s.Register("a", Location{Host: "h1"}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if _, err := s.Lookup(context.Background(), "a"); err != nil {
		t.Fatalf("entry expired with TTL disabled: %v", err)
	}
}

// flakyResolver fails the first n lookups.
type flakyResolver struct {
	svc   *Service
	fails atomic.Int64
}

func (f *flakyResolver) Lookup(ctx context.Context, id string) (Record, error) {
	if f.fails.Add(-1) >= 0 {
		return Record{}, errors.New("naming: transient")
	}
	return f.svc.Lookup(ctx, id)
}

func TestLookupRetryRidesOutAbsence(t *testing.T) {
	s := NewService()
	if err := s.Register("a", Location{Host: "h1"}); err != nil {
		t.Fatal(err)
	}
	fr := &flakyResolver{svc: s}
	fr.fails.Store(3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, err := LookupRetry(ctx, fr, "a", RetryConfig{Initial: time.Millisecond, Max: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("LookupRetry: %v", err)
	}
	if rec.Loc.Host != "h1" {
		t.Fatalf("record = %+v", rec)
	}
	if fr.fails.Load() >= 0 {
		t.Fatal("resolver was not retried through its failures")
	}
}

func TestLookupRetryHonorsContext(t *testing.T) {
	s := NewService() // agent never registered
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := LookupRetry(ctx, s, "ghost", RetryConfig{Initial: 5 * time.Millisecond})
	if err == nil {
		t.Fatal("lookup of unregistered agent succeeded")
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want last lookup error (ErrNotFound)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry ran far past context deadline: %v", elapsed)
	}
}
