package naming

import "context"

// Local adapts an in-process Service to the context-taking directory
// interface used by the agent runtime, so a single-process deployment (all
// hosts in one binary, as in tests and simulations) and a multi-process
// deployment (hosts using Client against a naming Server) are
// interchangeable.
type Local struct {
	Svc *Service
}

// Register registers an agent.
func (l Local) Register(_ context.Context, agentID string, loc Location) error {
	return l.Svc.Register(agentID, loc)
}

// Update records an agent migration.
func (l Local) Update(_ context.Context, agentID string, loc Location, epoch uint64) error {
	return l.Svc.Update(agentID, loc, epoch)
}

// Deregister removes an agent.
func (l Local) Deregister(_ context.Context, agentID string) error {
	return l.Svc.Deregister(agentID)
}

// Lookup resolves an agent's current location.
func (l Local) Lookup(ctx context.Context, agentID string) (Record, error) {
	return l.Svc.Lookup(ctx, agentID)
}
