package naming

import (
	"context"
	"errors"
	"testing"
	"time"

	"naplet/internal/obs"
)

// countingResolver counts how often the authoritative resolver is hit.
type countingResolver struct {
	svc   *Service
	calls int
}

func (c *countingResolver) Lookup(ctx context.Context, id string) (Record, error) {
	c.calls++
	return c.svc.Lookup(ctx, id)
}

func cacheLoc(host string) Location {
	return Location{Host: host, ControlAddr: host + ":1", DataAddr: host + ":2", DockAddr: host + ":3"}
}

func TestCacheHitsAndMetrics(t *testing.T) {
	svc := NewService()
	if err := svc.Register("a", cacheLoc("h1")); err != nil {
		t.Fatal(err)
	}
	cr := &countingResolver{svc: svc}
	reg := obs.NewRegistry()
	c := NewCache(cr, CacheConfig{Metrics: reg})
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		rec, err := c.Lookup(ctx, "a")
		if err != nil || rec.Loc.Host != "h1" {
			t.Fatalf("lookup %d: %+v, %v", i, rec, err)
		}
	}
	if cr.calls != 1 {
		t.Fatalf("resolver hit %d times for 5 lookups, want 1", cr.calls)
	}
	if got := reg.Counter("naming.cache_hits").Value(); got != 4 {
		t.Fatalf("cache_hits = %d, want 4", got)
	}
	if got := reg.Counter("naming.cache_misses").Value(); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
	st := c.Stats()
	if st.HitRate < 0.79 || st.HitRate > 0.81 {
		t.Fatalf("hit rate = %v, want 0.8", st.HitRate)
	}

	// Misses for unknown agents do not poison the cache.
	if _, err := c.Lookup(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost lookup: %v", err)
	}
}

func TestCacheInvalidation(t *testing.T) {
	svc := NewService()
	svc.Register("a", cacheLoc("h1"))
	cr := &countingResolver{svc: svc}
	c := NewCache(cr, CacheConfig{})
	ctx := context.Background()

	c.Lookup(ctx, "a") // fill at epoch 1

	// The agent migrates; until invalidated, the cache serves the old
	// location (that is the deal — invalidation is proactive, not TTL).
	svc.Update("a", cacheLoc("h2"), 2)
	rec, _ := c.Lookup(ctx, "a")
	if rec.Loc.Host != "h1" {
		t.Fatalf("expected cached (stale) h1 before invalidation, got %s", rec.Loc.Host)
	}

	// Epoch-guarded invalidation: a notification at or below the cached
	// epoch is a no-op, one above it evicts.
	c.InvalidateBelow("a", 1)
	if rec, _ := c.Lookup(ctx, "a"); rec.Loc.Host != "h1" {
		t.Fatal("InvalidateBelow(1) must not evict an epoch-1 entry")
	}
	c.InvalidateBelow("a", 2)
	rec, err := c.Lookup(ctx, "a")
	if err != nil || rec.Loc.Host != "h2" || rec.Epoch != 2 {
		t.Fatalf("after invalidation: %+v, %v", rec, err)
	}

	// Unconditional invalidation always evicts.
	before := cr.calls
	c.Invalidate("a")
	c.Lookup(ctx, "a")
	if cr.calls != before+1 {
		t.Fatal("Invalidate did not evict")
	}
}

func TestCacheEpochGuardAgainstStaleFill(t *testing.T) {
	// A migration notification (Advance) lands while a slower lookup
	// response from before the migration is still in flight; the stale
	// fill must not overwrite the fresher cached epoch.
	svc := NewService()
	svc.Register("a", cacheLoc("h1"))
	c := NewCache(&countingResolver{svc: svc}, CacheConfig{})
	ctx := context.Background()
	c.Lookup(ctx, "a") // epoch 1 cached

	c.Advance("a", Location{ControlAddr: "h2:1", DataAddr: "h2:2"}, 2)
	rec, _ := c.Lookup(ctx, "a")
	if rec.Epoch != 2 || rec.Loc.DataAddr != "h2:2" {
		t.Fatalf("advance did not take: %+v", rec)
	}
	if rec.Loc.DockAddr != "h1:3" {
		t.Fatalf("advance must keep unannounced fields: %+v", rec)
	}

	// The stale (epoch 1) fill arrives late.
	stale := Record{AgentID: "a", Loc: cacheLoc("h1"), Epoch: 1}
	if got := c.fill(stale); got.Epoch != 2 {
		t.Fatalf("stale fill won: %+v", got)
	}
	rec, _ = c.Lookup(ctx, "a")
	if rec.Epoch != 2 {
		t.Fatalf("stale fill evicted fresher entry: %+v", rec)
	}

	// Advance at or below the cached epoch is ignored.
	c.Advance("a", Location{DataAddr: "old:9"}, 2)
	rec, _ = c.Lookup(ctx, "a")
	if rec.Loc.DataAddr != "h2:2" {
		t.Fatalf("stale advance took effect: %+v", rec)
	}
	// Advance for an uncached agent fabricates nothing.
	c.Advance("b", Location{DataAddr: "x:1"}, 5)
	if c.Stats().Entries != 1 {
		t.Fatalf("advance fabricated an entry: %+v", c.Stats())
	}
	// Epoch-0 advance degrades to unconditional invalidation.
	c.Advance("a", Location{}, 0)
	if c.Stats().Entries != 0 {
		t.Fatal("epoch-0 advance must invalidate")
	}
}

func TestCacheTTLSafetyNet(t *testing.T) {
	svc := NewService()
	svc.Register("a", cacheLoc("h1"))
	cr := &countingResolver{svc: svc}
	c := NewCache(cr, CacheConfig{TTL: 10 * time.Millisecond})
	now := time.Now()
	c.now = func() time.Time { return now }
	ctx := context.Background()

	c.Lookup(ctx, "a")
	c.Lookup(ctx, "a")
	if cr.calls != 1 {
		t.Fatalf("resolver calls = %d, want 1", cr.calls)
	}
	now = now.Add(20 * time.Millisecond)
	c.Lookup(ctx, "a")
	if cr.calls != 2 {
		t.Fatalf("TTL-expired entry served from cache (calls=%d)", cr.calls)
	}
}

func TestCacheBoundedSize(t *testing.T) {
	svc := NewService()
	c := NewCache(&countingResolver{svc: svc}, CacheConfig{MaxEntries: 8})
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		id := string(rune('a' + i))
		svc.Register(id, cacheLoc("h"))
		c.Lookup(ctx, id)
	}
	if got := c.Stats().Entries; got > 8 {
		t.Fatalf("cache grew to %d entries past bound 8", got)
	}
}
