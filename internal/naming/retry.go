package naming

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryConfig tunes LookupRetry. The zero value selects the defaults.
type RetryConfig struct {
	// Initial is the first retry gap. Default 10ms.
	Initial time.Duration
	// Max caps the gap as it doubles. Default 500ms.
	Max time.Duration
	// Jitter is the fraction (0..1) by which each gap is perturbed.
	// Default 0.2.
	Jitter float64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Initial <= 0 {
		c.Initial = 10 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 500 * time.Millisecond
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	return c
}

// LookupRetry resolves agentID, retrying with jittered exponential
// backoff until ctx is done. It exists for the recovery paths: right
// after a crash the target agent's entry may be missing (expired by TTL)
// or still pointing at the dead host, and a single lookup would either
// fail or poison the resume attempt with a stale address. Retrying rides
// out the window until the recovered host re-registers.
//
// Lookup errors other than ErrNotFound (e.g. a briefly unreachable name
// server) are retried too; the last error is returned when ctx expires.
func LookupRetry(ctx context.Context, r Resolver, agentID string, cfg RetryConfig) (Record, error) {
	cfg = cfg.withDefaults()
	gap := cfg.Initial
	var lastErr error
	for {
		rec, err := r.Lookup(ctx, agentID)
		if err == nil {
			return rec, nil
		}
		lastErr = err
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
		jittered := time.Duration(float64(gap) * (1 + cfg.Jitter*(rand.Float64()-0.5)))
		select {
		case <-ctx.Done():
			return Record{}, lastErr
		case <-time.After(jittered):
		}
		gap *= 2
		if gap > cfg.Max {
			gap = cfg.Max
		}
	}
	return Record{}, lastErr
}
