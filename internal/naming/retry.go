package naming

import (
	"context"
	"math/rand"
	"time"
)

// RetryConfig tunes LookupRetry. The zero value selects the defaults.
type RetryConfig struct {
	// Initial is the first backoff ceiling. Default 10ms.
	Initial time.Duration
	// Max caps the ceiling as it doubles. Default 500ms.
	Max time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Initial <= 0 {
		c.Initial = 10 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 500 * time.Millisecond
	}
	return c
}

// LookupRetry resolves agentID, retrying with full-jitter exponential
// backoff until ctx is done. It exists for the recovery paths: right
// after a crash the target agent's entry may be missing (expired by TTL)
// or still pointing at the dead host, and a single lookup would either
// fail or poison the resume attempt with a stale address. Retrying rides
// out the window until the recovered host re-registers.
//
// Each attempt sleeps a uniformly random duration in (0, ceiling], where
// the ceiling doubles from Initial up to Max — "full jitter", which
// decorrelates the retry herd a thundering cluster of clients would
// otherwise form against a recovering name server. The sleep is
// interruptible: ctx cancellation between attempts returns immediately.
//
// Lookup errors other than ErrNotFound (e.g. a briefly unreachable name
// server) are retried too; the last error is returned when ctx expires.
func LookupRetry(ctx context.Context, r Resolver, agentID string, cfg RetryConfig) (Record, error) {
	cfg = cfg.withDefaults()
	ceiling := cfg.Initial
	var lastErr error
	for {
		rec, err := r.Lookup(ctx, agentID)
		if err == nil {
			return rec, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		// Full jitter: sleep anywhere up to the current ceiling. The +1
		// keeps the gap strictly positive so a zero draw cannot busy-spin.
		gap := time.Duration(rand.Int63n(int64(ceiling))) + 1
		timer := time.NewTimer(gap)
		select {
		case <-ctx.Done():
			timer.Stop()
			return Record{}, lastErr
		case <-timer.C:
		}
		ceiling *= 2
		if ceiling > cfg.Max {
			ceiling = cfg.Max
		}
	}
	return Record{}, lastErr
}
