package naming

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/netem"
	"naplet/internal/rudp"
)

// TestRemoteNamingUnderControlLoss drives the remote naming client/server
// pair through a seeded 2% control-channel drop plan and asserts that
//
//   - every operation completes within the transport's bounded retry
//     budget (no op hangs past the per-op deadline),
//   - the epoch sequence never regresses or duplicates: retransmitted
//     requests are absorbed by the response cache, and an explicit
//     duplicate update is rejected with ErrStale rather than applied
//     twice.
func TestRemoteNamingUnderControlLoss(t *testing.T) {
	faults := netem.NewFaults(42)
	faults.SetLoss(0.02)
	drop := faults.DropFn()
	var dropped atomic.Int64
	countingDrop := func(p []byte) bool {
		if drop(p) {
			dropped.Add(1)
			return true
		}
		return false
	}

	svc := NewService()
	srv, err := NewServerWithConfig(svc, "127.0.0.1:0", rudp.Config{DropFn: countingDrop})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewClientWithConfig(srv.Addr(), rudp.Config{DropFn: countingDrop})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// perOp bounds each operation: the rudp retry budget (10 retransmits
	// with capped backoff) resolves well inside it, so hitting the bound
	// means retries are not bounded the way they should be.
	const perOp = 10 * time.Second
	const agents = 40
	loc := func(host string) Location {
		return Location{Host: host, ControlAddr: "10.0.0.1:1", DataAddr: "10.0.0.1:2"}
	}

	for i := 0; i < agents; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), perOp)
		err := cli.Register(ctx, fmt.Sprintf("agent-%d", i), loc("h1"))
		cancel()
		if err != nil {
			t.Fatalf("register agent-%d under loss: %v", i, err)
		}
	}

	// Sequential migrations: each epoch must land exactly once.
	for epoch := uint64(2); epoch <= 6; epoch++ {
		for i := 0; i < agents; i++ {
			id := fmt.Sprintf("agent-%d", i)
			ctx, cancel := context.WithTimeout(context.Background(), perOp)
			err := cli.Update(ctx, id, loc(fmt.Sprintf("h%d", epoch)), epoch)
			cancel()
			if err != nil {
				t.Fatalf("update %s to epoch %d under loss: %v", id, epoch, err)
			}
			// A duplicate of an applied update is a stale write, not a
			// second application.
			ctx, cancel = context.WithTimeout(context.Background(), perOp)
			err = cli.Update(ctx, id, loc("dup"), epoch)
			cancel()
			if !errors.Is(err, ErrStale) {
				t.Fatalf("duplicate update %s epoch %d: got %v, want ErrStale", id, epoch, err)
			}
		}
	}

	for i := 0; i < agents; i++ {
		id := fmt.Sprintf("agent-%d", i)
		ctx, cancel := context.WithTimeout(context.Background(), perOp)
		rec, err := cli.Lookup(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("lookup %s under loss: %v", id, err)
		}
		if rec.Epoch != 6 {
			t.Fatalf("%s ended at epoch %d, want exactly 6 (duplicate or lost update)", id, rec.Epoch)
		}
		if rec.Loc.Host != "h6" {
			t.Fatalf("%s ended at %q, want h6", id, rec.Loc.Host)
		}
	}

	if dropped.Load() == 0 {
		t.Fatal("fault plan never dropped a packet; the loss path was not exercised")
	}
	t.Logf("completed under loss: %d packets dropped", dropped.Load())
}
