package naming

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func loc(host string) Location {
	return Location{
		Host:        host,
		ControlAddr: host + ":7001",
		DataAddr:    host + ":7002",
		DockAddr:    host + ":7003",
	}
}

func TestRegisterLookup(t *testing.T) {
	s := NewService()
	if err := s.Register("a", loc("h1")); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Lookup(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loc.Host != "h1" || rec.Epoch != 1 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestLookupUnknown(t *testing.T) {
	s := NewService()
	if _, err := s.Lookup(context.Background(), "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDuplicateRegister(t *testing.T) {
	s := NewService()
	if err := s.Register("a", loc("h1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("a", loc("h2")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestEmptyAgentIDRejected(t *testing.T) {
	s := NewService()
	if err := s.Register("", loc("h1")); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestUpdateEpochOrdering(t *testing.T) {
	s := NewService()
	if err := s.Register("a", loc("h1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("a", loc("h2"), 2); err != nil {
		t.Fatal(err)
	}
	// A stale update from the old host must be rejected.
	if err := s.Update("a", loc("h1"), 2); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if err := s.Update("a", loc("h1"), 1); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	rec, _ := s.Lookup(context.Background(), "a")
	if rec.Loc.Host != "h2" || rec.Epoch != 2 {
		t.Fatalf("record after stale updates = %+v", rec)
	}
}

func TestUpdateUnknown(t *testing.T) {
	s := NewService()
	if err := s.Update("ghost", loc("h1"), 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeregister(t *testing.T) {
	s := NewService()
	s.Register("a", loc("h1"))
	if err := s.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(context.Background(), "a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("agent still resolvable after deregister")
	}
	if err := s.Deregister("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double deregister: err = %v", err)
	}
	// Trace survives deregistration.
	if tr := s.Trace("a"); len(tr) != 1 {
		t.Fatalf("trace = %v", tr)
	}
}

func TestTraceAccumulates(t *testing.T) {
	s := NewService()
	s.Register("a", loc("h1"))
	for i := 2; i <= 5; i++ {
		if err := s.Update("a", loc(fmt.Sprintf("h%d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr := s.Trace("a")
	if len(tr) != 5 {
		t.Fatalf("trace length = %d, want 5", len(tr))
	}
	for i, m := range tr {
		want := fmt.Sprintf("h%d", i+1)
		if m.Loc.Host != want || m.Epoch != uint64(i+1) {
			t.Fatalf("trace[%d] = %+v, want host %s epoch %d", i, m, want, i+1)
		}
	}
}

func TestTraceBounded(t *testing.T) {
	s := NewService()
	s.Register("a", loc("h0"))
	for i := 2; i <= maxTrace+50; i++ {
		if err := s.Update("a", loc("h"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.Trace("a")); n != maxTrace {
		t.Fatalf("trace length = %d, want %d", n, maxTrace)
	}
}

func TestAgentsSorted(t *testing.T) {
	s := NewService()
	for _, id := range []string{"c", "a", "b"} {
		s.Register(id, loc("h"))
	}
	got := s.Agents()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Agents() = %v, want %v", got, want)
		}
	}
}

func TestWaitForBlocksUntilRegister(t *testing.T) {
	s := NewService()
	done := make(chan Record, 1)
	go func() {
		rec, err := s.WaitFor(context.Background(), "late")
		if err != nil {
			t.Error(err)
		}
		done <- rec
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitFor returned before registration")
	default:
	}
	s.Register("late", loc("h9"))
	select {
	case rec := <-done:
		if rec.Loc.Host != "h9" {
			t.Fatalf("record = %+v", rec)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitFor did not wake up")
	}
}

func TestWaitForContextCancel(t *testing.T) {
	s := NewService()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.WaitFor(ctx, "never"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	s := NewService()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("agent-%d", i)
			if err := s.Register(id, loc("h1")); err != nil {
				t.Error(err)
				return
			}
			for e := uint64(2); e <= 10; e++ {
				if err := s.Update(id, loc("h2"), e); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Lookup(context.Background(), id); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(s.Agents()) != 32 {
		t.Fatalf("agents = %d, want 32", len(s.Agents()))
	}
}

func TestRemoteClientServer(t *testing.T) {
	svc := NewService()
	srv, err := NewServer(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	if err := cli.Register(ctx, "a", loc("h1")); err != nil {
		t.Fatal(err)
	}
	rec, err := cli.Lookup(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loc.Host != "h1" || rec.Epoch != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if err := cli.Update(ctx, "a", loc("h2"), 2); err != nil {
		t.Fatal(err)
	}
	if err := cli.Update(ctx, "a", loc("h2"), 2); !errors.Is(err, ErrStale) {
		t.Fatalf("stale over RPC: err = %v", err)
	}
	tr, err := cli.Trace(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || tr[1].Loc.Host != "h2" {
		t.Fatalf("trace = %+v", tr)
	}
	if _, err := cli.Lookup(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remote not-found: err = %v", err)
	}
	if err := cli.Deregister(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Lookup(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("agent resolvable after remote deregister")
	}
	if err := cli.Register(ctx, "a", loc("h3")); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteWaitFor(t *testing.T) {
	svc := NewService()
	srv, err := NewServer(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	// Registration lands while the wait is pending.
	done := make(chan Record, 1)
	errs := make(chan error, 1)
	go func() {
		rec, err := cli.WaitFor(ctx, "late", 10*time.Second)
		if err != nil {
			errs <- err
			return
		}
		done <- rec
	}()
	time.Sleep(30 * time.Millisecond)
	if err := svc.Register("late", loc("h7")); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-done:
		if rec.Loc.Host != "h7" {
			t.Fatalf("record = %+v", rec)
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("remote WaitFor never returned")
	}

	// A wait on a never-registered agent expires with ErrNotFound.
	if _, err := cli.WaitFor(ctx, "never", 400*time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}
