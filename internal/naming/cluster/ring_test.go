package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndInRange(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("agent-%d", i)
		sa, sb := a.ShardOf(id), b.ShardOf(id)
		if sa != sb {
			t.Fatalf("ring not deterministic: %s -> %d vs %d", id, sa, sb)
		}
		if sa < 0 || sa >= 5 {
			t.Fatalf("shard out of range: %s -> %d", id, sa)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, ids = 4, 20000
	r := NewRing(shards)
	counts := make([]int, shards)
	for i := 0; i < ids; i++ {
		counts[r.ShardOf(fmt.Sprintf("agent-%d", i))]++
	}
	mean := ids / shards
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d owns %d of %d ids (mean %d): unbalanced %v", s, c, ids, mean, counts)
		}
	}
}

func TestRingSmoothness(t *testing.T) {
	// Growing the ring by one shard must remap only a minority of ids —
	// the property that bounds resharding churn.
	const ids = 10000
	before, after := NewRing(4), NewRing(5)
	moved := 0
	for i := 0; i < ids; i++ {
		id := fmt.Sprintf("agent-%d", i)
		if before.ShardOf(id) != after.ShardOf(id) {
			moved++
		}
	}
	// Ideal is 1/5 = 20%; allow generous slack for hash variance.
	if moved > ids*40/100 {
		t.Fatalf("adding one shard moved %d/%d ids; consistent hashing should move ~20%%", moved, ids)
	}
}

func TestBuildLayout(t *testing.T) {
	l, err := BuildLayout([]string{"c", "a", "b"}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic regardless of input order.
	l2, err := BuildLayout([]string{"a", "b", "c"}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := range l.Replicas {
		for r := range l.Replicas[s] {
			if l.Replicas[s][r] != l2.Replicas[s][r] {
				t.Fatalf("layout not order-independent: %v vs %v", l.Replicas, l2.Replicas)
			}
		}
	}
	if got := l.Replicas[0][0]; got != "a" {
		t.Fatalf("shard 0 leader = %s, want a", got)
	}
	if got := l.Replicas[1][1]; got != "c" {
		t.Fatalf("shard 1 follower = %s, want c", got)
	}
	if _, err := BuildLayout([]string{"a"}, 2, 2); err == nil {
		t.Fatal("replication beyond peer count should fail")
	}
	if _, err := BuildLayout([]string{"a", "a"}, 1, 1); err == nil {
		t.Fatal("duplicate peers should fail")
	}
}
