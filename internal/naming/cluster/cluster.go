// Package cluster shards and replicates the agent location service so the
// naming control plane survives individual-node failure and scales past a
// single registry process.
//
// The namespace is partitioned by a consistent-hash ring over agent ids
// into a fixed number of shards; each shard is replicated across M nodes
// with a simple leader-lease scheme:
//
//   - Exactly one replica per shard acts as leader at a time, identified
//     by a monotonically increasing term. Every reply carries the term
//     and the replier's view of the leadership, so clients converge on
//     the leader without a directory of directories.
//   - The leader applies writes locally, then replicates them
//     synchronously to every follower before acknowledging — with the
//     small replication factors the design targets (M=2..3), an acked
//     write survives the loss of the leader.
//   - Replication batches carry a per-leader sequence number. A follower
//     that detects a gap (it was down, or a new term began) refuses the
//     batch and is brought back with a full-state transfer before it
//     counts as caught up.
//   - The replication stream doubles as the lease: a follower that has
//     applied an in-sequence batch within the staleness bound may serve
//     reads (its data can lag the leader by at most one unacknowledged
//     batch, which by definition no client has seen acked). Past the
//     bound it refuses reads and points the client at the leader.
//   - When the lease expires, followers take over staggered by their
//     replica rank (rank r waits r extra lease intervals), bumping the
//     term; the rank stagger makes simultaneous takeovers unlikely
//     without requiring consensus. Leadership changes surface as
//     lease-transfer events on the tracer and a naming.lease_transfers
//     counter.
//
// The scheme trades strict consistency under partition for simplicity:
// two replicas partitioned from each other can both claim leadership, and
// the higher term wins on heal. That matches the location service's
// failure model — a wrong location is detected at connect time and
// retried — and keeps the protocol small enough to reason about.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"naplet/internal/naming"
)

// Layout is the static cluster topology: which node hosts which replica
// of which shard. Every node and every client holds the same layout
// (derived deterministically from the sorted peer list), so routing needs
// no lookups of its own.
type Layout struct {
	// Shards is the shard count; agent ids map onto [0, Shards) via the
	// ring.
	Shards int
	// Replicas[s] lists the node addresses hosting shard s, in replica
	// rank order; index 0 is the initial leader.
	Replicas [][]string
}

// Validate checks internal consistency.
func (l Layout) Validate() error {
	if l.Shards <= 0 || len(l.Replicas) != l.Shards {
		return fmt.Errorf("cluster: layout has %d shards but %d replica sets", l.Shards, len(l.Replicas))
	}
	for s, reps := range l.Replicas {
		if len(reps) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", s)
		}
		seen := map[string]bool{}
		for _, addr := range reps {
			if addr == "" {
				return fmt.Errorf("cluster: shard %d has an empty replica address", s)
			}
			if seen[addr] {
				return fmt.Errorf("cluster: shard %d lists %s twice", s, addr)
			}
			seen[addr] = true
		}
	}
	return nil
}

// Nodes returns the distinct node addresses in the layout, sorted.
func (l Layout) Nodes() []string {
	seen := map[string]bool{}
	for _, reps := range l.Replicas {
		for _, addr := range reps {
			seen[addr] = true
		}
	}
	out := make([]string, 0, len(seen))
	for addr := range seen {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// BuildLayout derives the deterministic layout for the given peers: peers
// are sorted, and shard s is hosted by peers[(s+r) mod len(peers)] for
// replica ranks r in [0, replication). Every participant computing the
// layout from the same peer list gets the same answer, which is what lets
// the cluster bootstrap from a flag instead of a coordination service.
func BuildLayout(peers []string, shards, replication int) (Layout, error) {
	if len(peers) == 0 {
		return Layout{}, errors.New("cluster: no peers")
	}
	if shards <= 0 {
		return Layout{}, fmt.Errorf("cluster: invalid shard count %d", shards)
	}
	if replication <= 0 {
		return Layout{}, fmt.Errorf("cluster: invalid replication factor %d", replication)
	}
	if replication > len(peers) {
		return Layout{}, fmt.Errorf("cluster: replication %d exceeds %d peers", replication, len(peers))
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return Layout{}, fmt.Errorf("cluster: duplicate peer %s", sorted[i])
		}
	}
	l := Layout{Shards: shards, Replicas: make([][]string, shards)}
	for s := 0; s < shards; s++ {
		reps := make([]string, replication)
		for r := 0; r < replication; r++ {
			reps[r] = sorted[(s+r)%len(sorted)]
		}
		l.Replicas[s] = reps
	}
	return l, nil
}

// ShardInfo describes one hosted shard replica for the /namez debug
// surface.
type ShardInfo struct {
	Shard    int       `json:"shard"`
	Role     string    `json:"role"` // "leader" or "follower"
	Term     uint64    `json:"term"`
	Leader   string    `json:"leader"`
	Replicas []string  `json:"replicas"`
	Records  int       `json:"records"`
	MaxEpoch uint64    `json:"max_epoch"`
	Age      float64   `json:"age_ms"` // ms since last leader contact (0 for leaders)
	Synced   bool      `json:"synced"`
	Since    time.Time `json:"-"`
}

// --- wire protocol (gob over rudp, shared by node and client) ---

type msgKind uint8

const (
	kindClient msgKind = iota + 1 // client namespace operation
	kindRep                       // leader → follower replication / heartbeat
	kindGossip                    // node ↔ node term-vector exchange
	kindMap                       // fetch the layout + leadership hints
)

type opKind uint8

const (
	opLookup opKind = iota + 1
	opRegister
	opUpdate
	opDeregister
)

// shardTerm is one entry of a gossip/leadership vector.
type shardTerm struct {
	Shard  int
	Term   uint64
	Leader int
}

type request struct {
	Kind  msgKind
	Shard int

	// kindClient
	Op        opKind
	AgentID   string
	Loc       naming.Location
	Epoch     uint64
	Forwarded bool // set on a leader-forwarded write; never re-forwarded

	// kindRep
	Term    uint64
	Leader  int
	Seq     uint64
	Full    bool // Recs is a full-state transfer, not an incremental batch
	Recs    []naming.Record
	Removes []string

	// kindGossip
	Vec []shardTerm
}

type response struct {
	Err string
	// NotLeader redirects the caller: the replica refused the operation
	// and LeaderAddr (possibly empty when unknown) is its best hint.
	NotLeader  bool
	LeaderAddr string
	// Term and Leader report the replier's leadership view for the shard,
	// carried on every reply so callers converge without extra rounds.
	Term   uint64
	Leader int
	// AgeMs is the replier's data age: 0 from a leader, time since the
	// last in-sequence replication batch from a follower.
	AgeMs int64
	// NeedSync tells a replicating leader the follower has a sequence gap
	// and needs a full-state transfer.
	NeedSync bool
	Rec      naming.Record
	Layout   *Layout
	Vec      []shardTerm
}

// Sentinel errors.
var (
	// ErrUnavailable reports that no replica of the target shard could
	// serve the operation within the attempt budget.
	ErrUnavailable = errors.New("cluster: shard unavailable")
)
