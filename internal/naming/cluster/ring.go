package cluster

import (
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the number of ring points each shard owns. More
// points flatten the keyspace imbalance between shards; 64 keeps the
// worst shard within a few percent of the mean for realistic shard
// counts while the whole ring stays a few KiB.
const vnodesPerShard = 64

// Ring is a consistent-hash ring partitioning agent ids into shards. It
// is immutable after construction and deterministic for a given shard
// count, so every node and client computes an identical partition with no
// coordination.
//
// Consistent hashing is used for its smoothness property: growing the
// cluster from N to N+1 shards remaps only ~1/(N+1) of the agent ids,
// which bounds the re-registration churn a future resharding would cause.
type Ring struct {
	shards int
	points []ringPoint
}

type ringPoint struct {
	h     uint64
	shard int
}

// NewRing builds the ring for the given shard count (minimum 1).
func NewRing(shards int) *Ring {
	if shards < 1 {
		shards = 1
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodesPerShard)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{h: mix64(uint64(s)<<32 | uint64(v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	return r
}

// mix64 is the splitmix64 finalizer. FNV of short, structured inputs
// (vnode indexes, "agent-<n>" ids) leaves its output clustered in narrow
// bands of the 64-bit space, which makes a consistent-hash ring wildly
// unbalanced; the finalizer's avalanche spreads every input bit across
// the whole word.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// ShardOf maps an agent id to its owning shard: the id hashes to a point
// on the ring and the next shard point clockwise owns it.
func (r *Ring) ShardOf(agentID string) int {
	h := fnv.New64a()
	h.Write([]byte(agentID))
	key := mix64(h.Sum64())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
