package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/rudp"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// Addr is the node's UDP bind address ("" for an ephemeral loopback
	// port is only usable in single-process tests, since the layout must
	// name the address peers dial).
	Addr string
	// Layout is the cluster topology; the node hosts every shard whose
	// replica list contains Addr.
	Layout Layout
	// LeaseInterval is the leader's heartbeat/replication cadence.
	// Default 100ms.
	LeaseInterval time.Duration
	// LeaseDuration is how long a follower tolerates leader silence
	// before starting a takeover. Default 6x LeaseInterval.
	LeaseDuration time.Duration
	// StalenessBound is the maximum data age at which a follower still
	// serves reads. Default = LeaseDuration.
	StalenessBound time.Duration
	// GossipInterval is the cadence of term-vector exchange with peer
	// nodes. Default 5x LeaseInterval.
	GossipInterval time.Duration
	// TTL, when positive, expires records not refreshed within it.
	TTL time.Duration
	// Metrics receives the naming.* and naming.shard.* counter families.
	Metrics *obs.Registry
	// Tracer records lease-transfer events.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives node lifecycle logs.
	Logger *obs.Logger
	// DropFn injects control-channel faults (see rudp.Config.DropFn).
	DropFn func([]byte) bool
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = 100 * time.Millisecond
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 6 * c.LeaseInterval
	}
	if c.StalenessBound <= 0 {
		c.StalenessBound = c.LeaseDuration
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 5 * c.LeaseInterval
	}
	return c
}

// Node hosts replicas of the shards its address is assigned in the
// layout, behind a single reliable-UDP endpoint.
type Node struct {
	cfg NodeConfig
	ep  *rudp.Endpoint
	// epReady closes once ep is assigned: rudp starts its read loop
	// inside Listen, so the handler can run before Listen returns and
	// must not touch ep until publication.
	epReady  chan struct{}
	replicas map[int]*replica
	gossipTo []string // peer node addresses (excluding self)

	transfers *obs.Counter

	mu       sync.Mutex
	killed   bool
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// replica is one hosted shard replica.
type replica struct {
	shard int
	peers []string
	self  int // index of this node in peers
	n     *Node
	store *naming.Service

	lookups, registers *obs.Counter

	// repMu serializes replication fan-out so batch sequence numbers
	// leave in order. mu nests inside repMu, never the reverse.
	repMu sync.Mutex

	mu sync.Mutex
	// term and leader are this replica's leadership view. peers[leader]
	// is the address believed to lead; term increases on every transfer.
	term   uint64
	leader int
	// Leader state: repSeq numbers outgoing replication batches.
	repSeq uint64
	// Follower state: lastSeq/lastTerm track the replication stream;
	// lastContact is the time of the last in-sequence batch and synced
	// reports whether the stream is gap-free since then.
	lastSeq     uint64
	lastTerm    uint64
	lastContact time.Time
	synced      bool
	// repFails counts consecutive replication failures per peer index;
	// at maxRepFailures the peer is suspected dead and per-write
	// replication stops waiting on it.
	repFails []int
}

// NewNode starts a node. The returned node is already serving.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if cfg.Addr == "" {
		// The layout names every node by address, so a node cannot bind
		// ephemerally and then discover who it is.
		return nil, fmt.Errorf("cluster: node needs an explicit address present in the layout")
	}
	n := &Node{
		cfg:       cfg,
		epReady:   make(chan struct{}),
		replicas:  make(map[int]*replica),
		transfers: cfg.Metrics.Counter("naming.lease_transfers"),
		stop:      make(chan struct{}),
	}
	// All node state is built before the endpoint binds: the rudp handler
	// runs concurrently from the first packet onward.
	for s, reps := range cfg.Layout.Replicas {
		self := -1
		for i, a := range reps {
			if a == cfg.Addr {
				self = i
				break
			}
		}
		if self < 0 {
			continue
		}
		store := naming.NewService()
		store.SetMetrics(cfg.Metrics)
		if cfg.TTL > 0 {
			store.SetTTL(cfg.TTL)
		}
		r := &replica{
			shard:     s,
			peers:     reps,
			self:      self,
			n:         n,
			store:     store,
			lookups:   cfg.Metrics.Counter(fmt.Sprintf("naming.shard.%d.lookups", s)),
			registers: cfg.Metrics.Counter(fmt.Sprintf("naming.shard.%d.registers", s)),
			term:      1,
			leader:    0,
			synced:    self == 0, // the initial leader is trivially in sync
			repFails:  make([]int, len(reps)),
		}
		r.lastContact = time.Now()
		n.replicas[s] = r
		shard := s
		cfg.Metrics.Func(fmt.Sprintf("naming.shard.%d.term", s), func() float64 {
			rep := n.replicas[shard]
			rep.mu.Lock()
			defer rep.mu.Unlock()
			return float64(rep.term)
		})
	}
	if len(n.replicas) == 0 {
		return nil, fmt.Errorf("cluster: %s hosts no shard in the layout", cfg.Addr)
	}
	for _, a := range cfg.Layout.Nodes() {
		if a != cfg.Addr {
			n.gossipTo = append(n.gossipTo, a)
		}
	}
	sort.Strings(n.gossipTo)

	ep, err := rudp.Listen(cfg.Addr, n.handle, rudp.Config{DropFn: cfg.DropFn})
	if err != nil {
		return nil, err
	}
	n.ep = ep
	close(n.epReady)

	n.wg.Add(1)
	go n.leaseLoop()
	if len(n.gossipTo) > 0 {
		n.wg.Add(1)
		go n.gossipLoop()
	}
	return n, nil
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() string { return n.ep.Addr().String() }

// Close stops the node gracefully (today identical to Kill; a handover
// protocol could hang off this seam later).
func (n *Node) Close() error { return n.Kill() }

// Kill stops the node abruptly — the SIGKILL equivalent used by the
// chaos tests: the endpoint stops answering mid-conversation and no
// goodbye of any kind is sent.
func (n *Node) Kill() error {
	n.stopOnce.Do(func() {
		n.mu.Lock()
		n.killed = true
		n.mu.Unlock()
		close(n.stop)
	})
	err := n.ep.Close()
	n.wg.Wait()
	return err
}

// Infos reports the hosted shard replicas, sorted by shard, for /namez.
func (n *Node) Infos() []ShardInfo {
	shards := make([]int, 0, len(n.replicas))
	for s := range n.replicas {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	out := make([]ShardInfo, 0, len(shards))
	for _, s := range shards {
		r := n.replicas[s]
		r.mu.Lock()
		info := ShardInfo{
			Shard:    s,
			Term:     r.term,
			Leader:   r.peers[r.leader],
			Replicas: append([]string(nil), r.peers...),
			Synced:   r.synced,
		}
		if r.leader == r.self {
			info.Role = "leader"
		} else {
			info.Role = "follower"
			info.Age = float64(time.Since(r.lastContact).Microseconds()) / 1000
		}
		r.mu.Unlock()
		info.Records, info.MaxEpoch = r.store.Stats()
		out = append(out, info)
	}
	return out
}

// handle is the node's rudp request handler.
func (n *Node) handle(_ *net.UDPAddr, reqBytes []byte) []byte {
	<-n.epReady // replication handlers forward through n.ep
	var req request
	if err := gob.NewDecoder(bytes.NewReader(reqBytes)).Decode(&req); err != nil {
		return encode(response{Err: "cluster: bad request: " + err.Error()})
	}
	switch req.Kind {
	case kindMap:
		l := n.cfg.Layout
		return encode(response{Layout: &l, Vec: n.vector()})
	case kindGossip:
		n.mergeVector(req.Vec)
		return encode(response{Vec: n.vector()})
	case kindClient, kindRep:
		r, ok := n.replicas[req.Shard]
		if !ok {
			return encode(response{Err: fmt.Sprintf("cluster: shard %d not hosted here", req.Shard)})
		}
		if req.Kind == kindRep {
			return encode(r.handleReplicate(req))
		}
		return encode(r.handleClient(req))
	default:
		return encode(response{Err: fmt.Sprintf("cluster: unknown kind %d", req.Kind)})
	}
}

func encode(resp response) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		panic("cluster: encoding response: " + err.Error())
	}
	return buf.Bytes()
}

// call sends a request to a peer node and decodes the response.
func (n *Node) call(ctx context.Context, addr string, req request) (response, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return response{}, err
	}
	respBytes, err := n.ep.Request(ctx, addr, buf.Bytes())
	if err != nil {
		return response{}, err
	}
	var resp response
	if err := gob.NewDecoder(bytes.NewReader(respBytes)).Decode(&resp); err != nil {
		return response{}, err
	}
	return resp, nil
}

// vector is the node's current leadership view across hosted shards.
func (n *Node) vector() []shardTerm {
	out := make([]shardTerm, 0, len(n.replicas))
	for s, r := range n.replicas {
		r.mu.Lock()
		out = append(out, shardTerm{Shard: s, Term: r.term, Leader: r.leader})
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// mergeVector adopts any strictly newer leadership a gossip partner
// reports for shards this node hosts.
func (n *Node) mergeVector(vec []shardTerm) {
	for _, st := range vec {
		r, ok := n.replicas[st.Shard]
		if !ok || st.Leader < 0 || st.Leader >= len(r.peers) {
			continue
		}
		r.mu.Lock()
		if st.Term > r.term {
			wasLeader := r.leader == r.self
			r.term = st.Term
			r.leader = st.Leader
			r.synced = false // a new term needs a full sync before follower reads
			if wasLeader && st.Leader != r.self {
				r.n.cfg.Logger.Infof("cluster: shard %d stepping down via gossip (term %d, leader %s)", st.Shard, st.Term, r.peers[st.Leader])
			}
		}
		r.mu.Unlock()
	}
}

// leaseLoop drives leader heartbeats and follower failover.
func (n *Node) leaseLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.LeaseInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		for _, r := range n.replicas {
			r.tick()
		}
	}
}

// gossipLoop exchanges term vectors with peer nodes round-robin.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	i := 0
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		addr := n.gossipTo[i%len(n.gossipTo)]
		i++
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.LeaseInterval*4)
		resp, err := n.call(ctx, addr, request{Kind: kindGossip, Vec: n.vector()})
		cancel()
		if err == nil {
			n.mergeVector(resp.Vec)
		}
	}
}
