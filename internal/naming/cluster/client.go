package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/rudp"
)

// ClientConfig configures a cluster client.
type ClientConfig struct {
	// Seeds are addresses of cluster nodes; any one reachable seed is
	// enough to fetch the layout.
	Seeds []string
	// Metrics, when non-nil, receives naming.client.* counters.
	Metrics *obs.Registry
	// Logger, when non-nil, receives routing logs.
	Logger *obs.Logger
	// DropFn injects control-channel faults (see rudp.Config.DropFn).
	DropFn func([]byte) bool
}

// Client routes namespace operations to the cluster. It implements both
// naming.Resolver and the agent runtime's Directory interface, so a
// napletd can point its whole stack at the cluster with one flag.
type Client struct {
	ep     *rudp.Endpoint
	ring   *Ring
	layout Layout
	log    *obs.Logger

	retries, redirects *obs.Counter

	mu sync.Mutex
	// leaders caches the last leader learned per shard, tried first.
	leaders map[int]string
}

// NewClient bootstraps a client from the seeds: the first reachable seed
// supplies the layout (every node carries it), and the ring is derived
// from the layout's shard count.
func NewClient(ctx context.Context, cfg ClientConfig) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("cluster: no seeds")
	}
	ep, err := rudp.Listen("127.0.0.1:0", nil, rudp.Config{DropFn: cfg.DropFn})
	if err != nil {
		return nil, err
	}
	c := &Client{
		ep:        ep,
		log:       cfg.Logger,
		retries:   cfg.Metrics.Counter("naming.client.retries"),
		redirects: cfg.Metrics.Counter("naming.client.redirects"),
		leaders:   make(map[int]string),
	}
	var lastErr error
	for _, seed := range cfg.Seeds {
		callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		resp, err := c.call(callCtx, seed, request{Kind: kindMap})
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Layout == nil || resp.Layout.Validate() != nil {
			lastErr = fmt.Errorf("cluster: seed %s returned no usable layout", seed)
			continue
		}
		c.layout = *resp.Layout
		c.ring = NewRing(c.layout.Shards)
		for _, st := range resp.Vec {
			if st.Shard >= 0 && st.Shard < len(c.layout.Replicas) && st.Leader >= 0 && st.Leader < len(c.layout.Replicas[st.Shard]) {
				c.leaders[st.Shard] = c.layout.Replicas[st.Shard][st.Leader]
			}
		}
		return c, nil
	}
	ep.Close()
	if lastErr == nil {
		lastErr = errors.New("cluster: no seed reachable")
	}
	return nil, fmt.Errorf("cluster: bootstrap failed: %w", lastErr)
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.ep.Close() }

// Layout returns the cluster topology the client bootstrapped with.
func (c *Client) Layout() Layout { return c.layout }

// ShardOf exposes the ring mapping, for debug surfaces.
func (c *Client) ShardOf(agentID string) int { return c.ring.ShardOf(agentID) }

func (c *Client) call(ctx context.Context, addr string, req request) (response, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return response{}, err
	}
	respBytes, err := c.ep.Request(ctx, addr, buf.Bytes())
	if err != nil {
		return response{}, err
	}
	var resp response
	if err := gob.NewDecoder(bytes.NewReader(respBytes)).Decode(&resp); err != nil {
		return response{}, err
	}
	return resp, nil
}

// candidates returns the replica addresses for a shard in try-order: the
// last learned leader first, then the layout's rank order.
func (c *Client) candidates(shard int) []string {
	reps := c.layout.Replicas[shard]
	c.mu.Lock()
	learned := c.leaders[shard]
	c.mu.Unlock()
	out := make([]string, 0, len(reps)+1)
	if learned != "" {
		out = append(out, learned)
	}
	for _, a := range reps {
		if a != learned {
			out = append(out, a)
		}
	}
	return out
}

// noteLeader records leadership learned from a reply.
func (c *Client) noteLeader(shard int, resp response) {
	reps := c.layout.Replicas[shard]
	addr := resp.LeaderAddr
	if addr == "" && resp.Leader >= 0 && resp.Leader < len(reps) {
		addr = reps[resp.Leader]
	}
	if addr == "" {
		return
	}
	c.mu.Lock()
	c.leaders[shard] = addr
	c.mu.Unlock()
}

// do routes one operation: try candidates in order, follow NotLeader
// redirects, and sweep the replica set repeatedly (with a short pause)
// until ctx expires — failover windows heal in lease-duration time, so
// patience beats giving up.
func (c *Client) do(ctx context.Context, req request) (response, error) {
	// Callers without a deadline (the agent runtime passes its root
	// context) still deserve an answer in bounded time.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 15*time.Second)
		defer cancel()
	}
	shard := c.ring.ShardOf(req.AgentID)
	req.Kind = kindClient
	req.Shard = shard
	var lastErr error
	var retry *time.Timer
	for sweep := 0; ; sweep++ {
		for _, addr := range c.candidates(shard) {
			if ctx.Err() != nil {
				return response{}, c.exhausted(shard, lastErr, ctx)
			}
			callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			resp, err := c.call(callCtx, addr, req)
			cancel()
			if err != nil {
				lastErr = err
				c.retries.Inc()
				continue
			}
			c.noteLeader(shard, resp)
			if resp.NotLeader {
				lastErr = fmt.Errorf("%w: shard %d replica %s is not leader", ErrUnavailable, shard, addr)
				c.redirects.Inc()
				continue
			}
			if resp.Err != "" {
				return resp, remoteError(resp.Err)
			}
			return resp, nil
		}
		// Whole replica set swept without an answer; wait out a slice of
		// the failover window before sweeping again, on one reused timer
		// rather than a fresh time.After allocation per sweep.
		if retry == nil {
			retry = time.NewTimer(50 * time.Millisecond)
			defer retry.Stop()
		} else {
			retry.Reset(50 * time.Millisecond)
		}
		select {
		case <-ctx.Done():
			return response{}, c.exhausted(shard, lastErr, ctx)
		case <-retry.C:
		}
	}
}

func (c *Client) exhausted(shard int, lastErr error, ctx context.Context) error {
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return fmt.Errorf("%w: shard %d: %v", ErrUnavailable, shard, lastErr)
}

// remoteError maps a serialized error string back onto the naming
// package's sentinels so errors.Is keeps working across the wire.
func remoteError(msg string) error {
	switch {
	case contains(msg, naming.ErrNotFound):
		return fmt.Errorf("%w (remote: %s)", naming.ErrNotFound, msg)
	case contains(msg, naming.ErrStale):
		return fmt.Errorf("%w (remote: %s)", naming.ErrStale, msg)
	case contains(msg, naming.ErrExists):
		return fmt.Errorf("%w (remote: %s)", naming.ErrExists, msg)
	default:
		return fmt.Errorf("cluster: remote error: %s", msg)
	}
}

func contains(msg string, sentinel error) bool {
	return bytes.Contains([]byte(msg), []byte(sentinel.Error()))
}

// Register registers an agent with the owning shard.
func (c *Client) Register(ctx context.Context, agentID string, loc naming.Location) error {
	_, err := c.do(ctx, request{Op: opRegister, AgentID: agentID, Loc: loc})
	return err
}

// Update reports an agent migration to the owning shard.
func (c *Client) Update(ctx context.Context, agentID string, loc naming.Location, epoch uint64) error {
	_, err := c.do(ctx, request{Op: opUpdate, AgentID: agentID, Loc: loc, Epoch: epoch})
	return err
}

// Deregister removes an agent from the owning shard.
func (c *Client) Deregister(ctx context.Context, agentID string) error {
	_, err := c.do(ctx, request{Op: opDeregister, AgentID: agentID})
	return err
}

// Lookup implements naming.Resolver against the cluster.
func (c *Client) Lookup(ctx context.Context, agentID string) (naming.Record, error) {
	resp, err := c.do(ctx, request{Op: opLookup, AgentID: agentID})
	if err != nil {
		return naming.Record{}, err
	}
	return resp.Rec, nil
}
