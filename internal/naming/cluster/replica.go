package cluster

import (
	"context"
	"fmt"
	"time"

	"naplet/internal/naming"
)

// This file is the per-shard replica state machine: the client-facing
// operation handlers, the leader's synchronous replication, and the
// follower's lease-expiry takeover.

// handleClient serves one namespace operation against this replica.
func (r *replica) handleClient(req request) response {
	if req.Op == opLookup {
		return r.handleLookup(req)
	}
	return r.handleWrite(req)
}

func (r *replica) handleLookup(req request) response {
	r.mu.Lock()
	isLeader := r.leader == r.self
	term, leader := r.term, r.leader
	age := time.Since(r.lastContact)
	synced := r.synced
	r.mu.Unlock()

	resp := response{Term: term, Leader: leader}
	if !isLeader {
		if !synced || age > r.n.cfg.StalenessBound {
			// The replica cannot bound how far behind it is; refusing
			// keeps the "never serve past the staleness bound" promise.
			resp.NotLeader = true
			resp.LeaderAddr = r.peers[leader]
			return resp
		}
		resp.AgeMs = age.Milliseconds()
	}
	r.lookups.Inc()
	rec, err := r.store.Lookup(context.Background(), req.AgentID)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Rec = rec
	return resp
}

func (r *replica) handleWrite(req request) response {
	r.mu.Lock()
	if r.leader != r.self {
		leaderAddr := r.peers[r.leader]
		term, leader := r.term, r.leader
		r.mu.Unlock()
		if req.Forwarded {
			// Never forward a forward: the sender's leadership view is as
			// stale as ours, and a loop helps no one.
			return response{NotLeader: true, LeaderAddr: leaderAddr, Term: term, Leader: leader}
		}
		fwd := req
		fwd.Forwarded = true
		ctx, cancel := context.WithTimeout(context.Background(), r.n.cfg.LeaseDuration)
		resp, err := r.n.call(ctx, leaderAddr, fwd)
		cancel()
		if err != nil {
			return response{NotLeader: true, Term: term, Leader: leader}
		}
		return resp
	}
	term, leader := r.term, r.leader
	r.mu.Unlock()

	resp := response{Term: term, Leader: leader}
	var err error
	remove := false
	switch req.Op {
	case opRegister:
		r.registers.Inc()
		err = r.store.Register(req.AgentID, req.Loc)
	case opUpdate:
		err = r.store.Update(req.AgentID, req.Loc, req.Epoch)
	case opDeregister:
		err = r.store.Deregister(req.AgentID)
		remove = true
	default:
		err = fmt.Errorf("cluster: unknown op %d", req.Op)
	}
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	// Synchronous replication before the ack: once the client hears
	// success, every in-sync follower holds the write, so losing the
	// leader loses nothing acknowledged.
	r.replicateWrite(req.AgentID, remove)
	if rec, lerr := r.store.Lookup(context.Background(), req.AgentID); lerr == nil {
		resp.Rec = rec
	}
	return resp
}

// replicateWrite ships the named agent's post-apply state to every
// follower. repMu serializes batches so sequence numbers arrive in order.
func (r *replica) replicateWrite(agentID string, remove bool) {
	var recs []naming.Record
	var removes []string
	if remove {
		removes = []string{agentID}
	} else if rec, err := r.store.Lookup(context.Background(), agentID); err == nil {
		recs = []naming.Record{rec}
	}
	r.repMu.Lock()
	defer r.repMu.Unlock()
	r.mu.Lock()
	r.repSeq++
	req := request{Kind: kindRep, Shard: r.shard, Term: r.term, Leader: r.leader, Seq: r.repSeq, Recs: recs, Removes: removes}
	r.mu.Unlock()
	r.fanOut(req, r.n.cfg.LeaseDuration, false)
}

// heartbeat re-asserts the lease (and catches lagging followers up) with
// an empty batch at the current sequence number. Suspect followers are
// still probed — the heartbeat is how a revived follower rejoins.
func (r *replica) heartbeat() {
	r.repMu.Lock()
	defer r.repMu.Unlock()
	r.mu.Lock()
	req := request{Kind: kindRep, Shard: r.shard, Term: r.term, Leader: r.leader, Seq: r.repSeq}
	r.mu.Unlock()
	timeout := r.n.cfg.LeaseInterval
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	r.fanOut(req, timeout, true)
}

// maxRepFailures is the consecutive-failure count after which a follower
// is suspected dead and per-write replication stops blocking on it
// (heartbeats keep probing; a sequence gap full-syncs it on revival).
const maxRepFailures = 3

// fanOut sends one replication request to every follower, adopting any
// higher term seen in the responses. Callers hold repMu.
func (r *replica) fanOut(req request, timeout time.Duration, probeSuspects bool) {
	for i, peer := range r.peers {
		if i == r.self {
			continue
		}
		r.mu.Lock()
		// Replication targets the peers that are not (believed) leader;
		// when we are not leader anymore, stop.
		if r.leader != r.self {
			r.mu.Unlock()
			return
		}
		suspect := r.repFails[i] >= maxRepFailures
		r.mu.Unlock()
		if suspect && !probeSuspects {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		resp, err := r.n.call(ctx, peer, req)
		cancel()
		r.mu.Lock()
		if err != nil {
			r.repFails[i]++
			r.mu.Unlock()
			continue
		}
		r.repFails[i] = 0
		if resp.Term > r.term {
			// A newer leadership exists; step down and let it drive.
			r.term = resp.Term
			if resp.Leader >= 0 && resp.Leader < len(r.peers) {
				r.leader = resp.Leader
			}
			r.synced = false
			r.lastContact = time.Now()
			r.mu.Unlock()
			r.n.cfg.Logger.Infof("cluster: shard %d stepping down to term %d", r.shard, resp.Term)
			return
		}
		r.mu.Unlock()
		if resp.NeedSync {
			r.fullSync(i, peer, timeout)
		}
	}
}

// fullSync ships the entire store to one lagging follower. Callers hold
// repMu, so the dump is consistent with the sequence number sent.
func (r *replica) fullSync(idx int, peer string, timeout time.Duration) {
	r.mu.Lock()
	req := request{Kind: kindRep, Shard: r.shard, Term: r.term, Leader: r.leader, Seq: r.repSeq, Full: true, Recs: r.store.Dump()}
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), timeout*4)
	_, err := r.n.call(ctx, peer, req)
	cancel()
	if err != nil {
		r.mu.Lock()
		r.repFails[idx]++
		r.mu.Unlock()
		return
	}
	r.n.cfg.Logger.Infof("cluster: shard %d full-synced follower %s (%d records)", r.shard, peer, len(req.Recs))
}

// handleReplicate applies a replication batch (or heartbeat) from the
// shard leader.
func (r *replica) handleReplicate(req request) response {
	r.mu.Lock()
	if req.Term < r.term {
		// A deposed leader is still replicating; our term tells it so.
		resp := response{Term: r.term, Leader: r.leader, NotLeader: true}
		r.mu.Unlock()
		return resp
	}
	if req.Term > r.term || r.leader != req.Leader {
		if req.Leader < 0 || req.Leader >= len(r.peers) {
			r.mu.Unlock()
			return response{Err: fmt.Sprintf("cluster: bad leader index %d", req.Leader)}
		}
		wasLeader := r.leader == r.self
		r.term = req.Term
		r.leader = req.Leader
		r.synced = false
		if wasLeader {
			r.n.cfg.Logger.Infof("cluster: shard %d deposed by term %d from %s", r.shard, req.Term, r.peers[req.Leader])
		}
	}
	if r.leader == r.self {
		resp := response{Err: "cluster: replicate addressed to leader", Term: r.term, Leader: r.leader}
		r.mu.Unlock()
		return resp
	}
	// A write batch advances the sequence by exactly one; a heartbeat
	// (empty batch) re-asserts the current sequence. Anything else is a
	// gap — including a heartbeat one past us, which means a write was
	// skipped while this follower was suspect.
	isWrite := len(req.Recs) > 0 || len(req.Removes) > 0
	var inSeq bool
	if isWrite {
		inSeq = r.synced && r.lastTerm == req.Term && req.Seq == r.lastSeq+1
	} else {
		inSeq = r.synced && r.lastTerm == req.Term && req.Seq == r.lastSeq
	}
	if !req.Full && !inSeq {
		// Gap (we were down, or a new term began): ask for a full sync;
		// lastContact is left alone, since un-synced time is stale time.
		resp := response{NeedSync: true, Term: r.term, Leader: r.leader}
		r.mu.Unlock()
		return resp
	}
	term, leader := r.term, r.leader
	r.mu.Unlock()

	for _, rec := range req.Recs {
		r.store.Apply(rec)
	}
	for _, id := range req.Removes {
		r.store.Remove(id)
	}
	if req.Full {
		// Reconcile deletions: anything we hold that the leader does not
		// was removed while we were away.
		keep := make(map[string]bool, len(req.Recs))
		for _, rec := range req.Recs {
			keep[rec.AgentID] = true
		}
		for _, id := range r.store.Agents() {
			if !keep[id] {
				r.store.Remove(id)
			}
		}
	}

	r.mu.Lock()
	r.lastSeq = req.Seq
	r.lastTerm = req.Term
	r.lastContact = time.Now()
	r.synced = true
	r.mu.Unlock()
	return response{Term: term, Leader: leader}
}

// tick advances the replica's lease machinery: leaders heartbeat,
// followers check for lease expiry and take over when it lapses.
func (r *replica) tick() {
	r.mu.Lock()
	if r.leader == r.self {
		r.mu.Unlock()
		r.heartbeat()
		return
	}
	age := time.Since(r.lastContact)
	// Stagger takeovers by replica rank relative to the failed leader so
	// the first live follower claims the lease alone; later ranks only
	// move if it too is gone.
	rank := (r.self - r.leader + len(r.peers)) % len(r.peers)
	wait := r.n.cfg.LeaseDuration + time.Duration(rank-1)*r.n.cfg.LeaseDuration/2
	if age <= wait {
		r.mu.Unlock()
		return
	}
	r.term++
	oldLeader := r.peers[r.leader]
	r.leader = r.self
	// Anything unreplicated on the dead leader was never acked; what we
	// hold is, by construction, everything any client was told succeeded.
	r.synced = true
	r.lastContact = time.Now()
	for i := range r.repFails {
		r.repFails[i] = 0
	}
	term := r.term
	r.mu.Unlock()

	r.n.transfers.Inc()
	r.n.cfg.Logger.Warnf("cluster: shard %d lease expired (leader %s silent %.0fms); taking over at term %d",
		r.shard, oldLeader, float64(age.Milliseconds()), term)
	span := r.n.cfg.Tracer.StartTrace(fmt.Sprintf("lease-transfer shard %d", r.shard))
	span.Annotate(fmt.Sprintf("term %d -> %d, failed leader %s, new leader %s (rank %d)", term-1, term, oldLeader, r.peers[r.self], rank))
	span.End()
	// Assert the new term immediately; surviving followers full-sync off
	// the term change.
	r.heartbeat()
}
