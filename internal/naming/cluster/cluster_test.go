package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"naplet/internal/naming"
	"naplet/internal/obs"
)

// reserveAddrs grabs n distinct loopback UDP addresses by binding and
// releasing them; the cluster layout must name addresses before the nodes
// exist.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	conns := make([]net.PacketConn, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserving port: %v", err)
		}
		conns[i] = pc
		addrs[i] = pc.LocalAddr().String()
	}
	for _, pc := range conns {
		pc.Close()
	}
	return addrs
}

// testCluster is an in-process cluster plus a client against it.
type testCluster struct {
	layout Layout
	nodes  map[string]*Node // by address
	client *Client
	reg    *obs.Registry
}

func startCluster(t *testing.T, nodeCount, shards, replication int, tweak func(*NodeConfig)) *testCluster {
	t.Helper()
	addrs := reserveAddrs(t, nodeCount)
	layout, err := BuildLayout(addrs, shards, replication)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{layout: layout, nodes: make(map[string]*Node), reg: obs.NewRegistry()}
	for _, addr := range addrs {
		cfg := NodeConfig{
			Addr:           addr,
			Layout:         layout,
			LeaseInterval:  25 * time.Millisecond,
			LeaseDuration:  150 * time.Millisecond,
			GossipInterval: 100 * time.Millisecond,
			Metrics:        tc.reg,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatalf("starting node %s: %v", addr, err)
		}
		tc.nodes[addr] = n
	}
	t.Cleanup(func() {
		for _, n := range tc.nodes {
			n.Kill()
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cli, err := NewClient(ctx, ClientConfig{Seeds: addrs, Metrics: tc.reg})
	if err != nil {
		t.Fatalf("starting client: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	tc.client = cli
	return tc
}

func loc(host string, epoch uint64) naming.Location {
	return naming.Location{
		Host:        host,
		ControlAddr: fmt.Sprintf("10.0.0.1:%d", 1000+epoch),
		DataAddr:    fmt.Sprintf("10.0.0.1:%d", 2000+epoch),
	}
}

func TestClusterBasicOps(t *testing.T) {
	tc := startCluster(t, 3, 3, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const agents = 60
	for i := 0; i < agents; i++ {
		id := fmt.Sprintf("agent-%d", i)
		if err := tc.client.Register(ctx, id, loc("h1", 1)); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	for i := 0; i < agents; i++ {
		id := fmt.Sprintf("agent-%d", i)
		rec, err := tc.client.Lookup(ctx, id)
		if err != nil {
			t.Fatalf("lookup %s: %v", id, err)
		}
		if rec.Epoch != 1 || rec.Loc.Host != "h1" {
			t.Fatalf("lookup %s = %+v, want epoch 1 at h1", id, rec)
		}
	}

	// Migrations bump epochs; stale and duplicate writes are rejected
	// with the naming sentinels across the wire.
	if err := tc.client.Update(ctx, "agent-0", loc("h2", 2), 2); err != nil {
		t.Fatalf("update: %v", err)
	}
	rec, err := tc.client.Lookup(ctx, "agent-0")
	if err != nil || rec.Epoch != 2 || rec.Loc.Host != "h2" {
		t.Fatalf("lookup after update = %+v, %v", rec, err)
	}
	if err := tc.client.Update(ctx, "agent-0", loc("h3", 2), 2); !errors.Is(err, naming.ErrStale) {
		t.Fatalf("stale update: got %v, want ErrStale", err)
	}
	if err := tc.client.Register(ctx, "agent-0", loc("h1", 1)); !errors.Is(err, naming.ErrExists) {
		t.Fatalf("duplicate register: got %v, want ErrExists", err)
	}
	if err := tc.client.Deregister(ctx, "agent-1"); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if _, err := tc.client.Lookup(ctx, "agent-1"); !errors.Is(err, naming.ErrNotFound) {
		t.Fatalf("lookup after deregister: got %v, want ErrNotFound", err)
	}
	if _, err := tc.client.Lookup(ctx, "ghost"); !errors.Is(err, naming.ErrNotFound) {
		t.Fatalf("lookup of unknown agent: got %v, want ErrNotFound", err)
	}

	// The per-shard counter family saw the traffic.
	var lookups uint64
	for s := 0; s < 3; s++ {
		lookups += tc.reg.Counter(fmt.Sprintf("naming.shard.%d.lookups", s)).Value()
	}
	if lookups == 0 {
		t.Fatal("per-shard lookup counters never incremented")
	}
}

func TestClusterReplicationReachesFollowers(t *testing.T) {
	tc := startCluster(t, 3, 3, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("agent-%d", i)
		if err := tc.client.Register(ctx, id, loc("h1", 1)); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	// Synchronous replication means followers hold every record the
	// moment the register call returns: sum follower record counts.
	perShard := make(map[int]map[string]int) // shard -> role -> records
	for _, n := range tc.nodes {
		for _, info := range n.Infos() {
			if perShard[info.Shard] == nil {
				perShard[info.Shard] = map[string]int{}
			}
			perShard[info.Shard][info.Role] += info.Records
		}
	}
	for shard, roles := range perShard {
		if roles["leader"] != roles["follower"] {
			t.Fatalf("shard %d: leader holds %d records, follower %d — synchronous replication lagging",
				shard, roles["leader"], roles["follower"])
		}
	}
}

func TestClusterLeaderFailover(t *testing.T) {
	tc := startCluster(t, 3, 3, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	const agents = 30
	for i := 0; i < agents; i++ {
		if err := tc.client.Register(ctx, fmt.Sprintf("agent-%d", i), loc("h1", 1)); err != nil {
			t.Fatalf("register: %v", err)
		}
	}

	// Kill the node leading shard 0 (rank 0 in the layout).
	victim := tc.layout.Replicas[0][0]
	tc.nodes[victim].Kill()

	// Every lookup must still be answered after failover, and writes must
	// land on the new leader.
	for i := 0; i < agents; i++ {
		id := fmt.Sprintf("agent-%d", i)
		rec, err := tc.client.Lookup(ctx, id)
		if err != nil {
			t.Fatalf("lookup %s after leader kill: %v", id, err)
		}
		if rec.Epoch != 1 {
			t.Fatalf("lookup %s after leader kill: epoch %d, want 1", id, rec.Epoch)
		}
	}
	for i := 0; i < agents; i++ {
		id := fmt.Sprintf("agent-%d", i)
		if err := tc.client.Update(ctx, id, loc("h2", 2), 2); err != nil {
			t.Fatalf("update %s after leader kill: %v", id, err)
		}
	}
	if got := tc.reg.Counter("naming.lease_transfers").Value(); got == 0 {
		t.Fatal("lease_transfers counter never incremented despite a leader kill")
	}

	// The survivor hosting shard 0 now reports itself leader at a higher
	// term.
	follower := tc.layout.Replicas[0][1]
	var found bool
	for _, info := range tc.nodes[follower].Infos() {
		if info.Shard == 0 {
			found = true
			if info.Role != "leader" || info.Term < 2 {
				t.Fatalf("shard 0 on survivor: role=%s term=%d, want leader at term >= 2", info.Role, info.Term)
			}
		}
	}
	if !found {
		t.Fatal("survivor does not host shard 0")
	}
}

func TestClusterFollowerRejectsStaleReads(t *testing.T) {
	// With the lease silenced (huge intervals, so no heartbeats land
	// within the test) a follower must refuse reads once its data age
	// exceeds the staleness bound rather than answer from stale state.
	tc := startCluster(t, 2, 1, 2, func(cfg *NodeConfig) {
		cfg.LeaseInterval = time.Hour
		cfg.LeaseDuration = 10 * time.Hour // no takeover either
		cfg.StalenessBound = 50 * time.Millisecond
		cfg.GossipInterval = time.Hour
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.client.Register(ctx, "a", loc("h1", 1)); err != nil {
		t.Fatalf("register: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // exceed the staleness bound

	// Ask the follower directly: it must redirect, not serve.
	follower := tc.layout.Replicas[0][1]
	resp, err := tc.client.call(ctx, follower, request{Kind: kindClient, Shard: 0, Op: opLookup, AgentID: "a"})
	if err != nil {
		t.Fatalf("direct follower call: %v", err)
	}
	if !resp.NotLeader {
		t.Fatalf("follower served a read %v past the staleness bound: %+v", 100*time.Millisecond, resp)
	}
	// The leader, of course, still serves.
	leader := tc.layout.Replicas[0][0]
	resp, err = tc.client.call(ctx, leader, request{Kind: kindClient, Shard: 0, Op: opLookup, AgentID: "a"})
	if err != nil || resp.Err != "" || resp.NotLeader {
		t.Fatalf("leader lookup: %v / %+v", err, resp)
	}
}
