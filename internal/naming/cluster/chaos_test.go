package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"naplet/internal/naming"
	"naplet/internal/netem"
	"naplet/internal/obs"
)

// TestKillOneShardLeader is the kill-one-shard chaos test: a 3-shard,
// 2-replica cluster under seeded 2% control-channel loss serves a
// migration wave (a storm of epoch-bumping Updates) while the node
// leading shard 0 is killed mid-wave. The invariants checked:
//
//   - zero lost lookups: every lookup issued before, during, and after
//     the failover gets an answer (patience bounded by a generous
//     context, not by luck);
//   - no stale serve past the staleness bound: a lookup never returns an
//     epoch below what was already acknowledged for that agent when the
//     lookup started — acked writes are replicated synchronously, so not
//     even the failover window may roll an agent's visible location back.
func TestKillOneShardLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	faults := netem.NewFaults(7)
	faults.SetLoss(0.02)
	drop := faults.DropFn()

	tc := startCluster(t, 3, 3, 2, func(cfg *NodeConfig) {
		cfg.DropFn = drop
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const agents = 120
	ids := make([]string, agents)
	for i := range ids {
		ids[i] = fmt.Sprintf("agent-%d", i)
		if err := tc.client.Register(ctx, ids[i], loc("h1", 1)); err != nil {
			t.Fatalf("register %s: %v", ids[i], err)
		}
	}

	// acked tracks, per agent, the highest epoch a client was told
	// succeeded. Lookups must never observe less.
	var ackedMu sync.Mutex
	acked := make(map[string]uint64, agents)
	for _, id := range ids {
		acked[id] = 1
	}

	var (
		stop     atomic.Bool
		failures atomic.Int64
		lookups  atomic.Int64
		updates  atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	// The migration wave: W workers each own a disjoint slice of agents
	// (so per-agent epochs advance sequentially) and bump them at ~100
	// migrations/sec in aggregate.
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := w
			for !stop.Load() {
				id := ids[next%agents]
				next += workers
				ackedMu.Lock()
				epoch := acked[id] + 1
				ackedMu.Unlock()
				uctx, ucancel := context.WithTimeout(ctx, 15*time.Second)
				err := tc.client.Update(uctx, id, loc(fmt.Sprintf("h-e%d", epoch), epoch), epoch)
				ucancel()
				if err != nil {
					// An unacked write may or may not have landed; the
					// next attempt re-reads the acked epoch. Stale means a
					// retried duplicate of a write that did land: adopt it.
					if errors.Is(err, naming.ErrStale) {
						ackedMu.Lock()
						if acked[id] < epoch {
							acked[id] = epoch
						}
						ackedMu.Unlock()
					}
					continue
				}
				updates.Add(1)
				ackedMu.Lock()
				if acked[id] < epoch {
					acked[id] = epoch
				}
				ackedMu.Unlock()
				time.Sleep(time.Duration(30+rand.Intn(20)) * time.Millisecond) // ~100/s across 4 workers
			}
		}(w)
	}

	// The lookup load: every answer is checked against the acked epoch
	// captured before the lookup was issued.
	for l := 0; l < 4; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + l)))
			for !stop.Load() {
				id := ids[rng.Intn(agents)]
				ackedMu.Lock()
				floor := acked[id]
				ackedMu.Unlock()
				lctx, lcancel := context.WithTimeout(ctx, 20*time.Second)
				rec, err := tc.client.Lookup(lctx, id)
				lcancel()
				if err != nil {
					fail("lost lookup for %s: %v", id, err)
					return
				}
				if rec.Epoch < floor {
					fail("stale serve for %s: epoch %d below acked %d", id, rec.Epoch, floor)
					return
				}
				lookups.Add(1)
			}
		}(l)
	}

	// Let the wave run, then SIGKILL the node leading shard 0 (which also
	// hosts a follower of another shard — the kill wounds two shards at
	// once) and keep the storm going through failover.
	time.Sleep(500 * time.Millisecond)
	victim := tc.layout.Replicas[0][0]
	tc.nodes[victim].Kill()
	t.Logf("killed %s mid-wave", victim)
	time.Sleep(2 * time.Second)

	stop.Store(true)
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d invariant violations (see errors above)", failures.Load())
	}
	if lookups.Load() == 0 || updates.Load() == 0 {
		t.Fatalf("storm did no work: %d lookups, %d updates", lookups.Load(), updates.Load())
	}
	if got := tc.reg.Counter("naming.lease_transfers").Value(); got == 0 {
		t.Fatal("no lease transfer recorded despite killing a leader")
	}

	// Post-mortem: every agent still resolves, at or above its acked
	// epoch, against the surviving 2-node cluster.
	for _, id := range ids {
		rec, err := tc.client.Lookup(ctx, id)
		if err != nil {
			t.Fatalf("post-failover lookup %s: %v", id, err)
		}
		ackedMu.Lock()
		floor := acked[id]
		ackedMu.Unlock()
		if rec.Epoch < floor {
			t.Fatalf("post-failover stale serve for %s: epoch %d below acked %d", id, rec.Epoch, floor)
		}
	}
	t.Logf("storm: %d lookups, %d acked updates, %d lease transfers",
		lookups.Load(), updates.Load(), tc.reg.Counter("naming.lease_transfers").Value())
}

// TestLeaseTransferTraced asserts the observability contract: a leader
// kill emits a lease-transfer trace with the term handoff annotated.
func TestLeaseTransferTraced(t *testing.T) {
	tracer := obs.NewTracer("cluster-test")
	tc := startCluster(t, 2, 1, 2, func(cfg *NodeConfig) {
		cfg.Tracer = tracer
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.client.Register(ctx, "a", loc("h1", 1)); err != nil {
		t.Fatalf("register: %v", err)
	}
	tc.nodes[tc.layout.Replicas[0][0]].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var found bool
		for _, ts := range tracer.Snapshot() {
			if ts.Root == "lease-transfer shard 0" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease-transfer trace recorded after leader kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
