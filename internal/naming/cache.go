package naming

import (
	"context"
	"sync"
	"time"

	"naplet/internal/obs"
)

// Cache is a client-side location cache in front of a Resolver, keyed by
// agent id and guarded by Record.Epoch. The design assumption (the paper's
// Section 2.1 consult-at-setup model) is that a location only changes when
// the agent migrates — and the controller already hears about every
// migration of a peer it talks to, through the SUS/SUS_RES/RES exchanges
// the redirector path handles. Invalidation therefore piggybacks on those
// messages (Invalidate / InvalidateBelow / Advance) instead of relying on
// TTL expiry; the TTL here is only a safety net for peers the controller
// has no connection to.
//
// Epochs make every mutation monotonic: a fill or advance never replaces a
// cached record with one of a lower epoch, so a slow lookup response
// racing a migration notification cannot reinstall the stale location.
type Cache struct {
	r   Resolver
	ttl time.Duration
	max int

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses, invalidations, advances *obs.Counter
	// Totals back Stats and the hit-rate gauge; kept separately from the
	// obs counters so they work without a registry.
	hitsTotal, lookupsTotal, invalsTotal, advancesTotal uint64

	// now is a test seam.
	now func() time.Time
}

type cacheEntry struct {
	rec     Record
	filled  time.Time
	partial bool // installed by Advance: addresses only, no Dock/Mail
}

// CacheConfig tunes a Cache. The zero value selects the defaults.
type CacheConfig struct {
	// TTL is the safety-net expiry for entries no migration notification
	// refreshes. Default 30s; negative disables expiry entirely.
	TTL time.Duration
	// MaxEntries bounds the cache; a random entry is evicted at the bound.
	// Default 65536.
	MaxEntries int
	// Metrics, when non-nil, receives the naming.cache_* counter family
	// and a naming.cache_hit_rate gauge.
	Metrics *obs.Registry
}

// NewCache wraps r in a cache.
func NewCache(r Resolver, cfg CacheConfig) *Cache {
	if cfg.TTL == 0 {
		cfg.TTL = 30 * time.Second
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 65536
	}
	c := &Cache{
		r:             r,
		ttl:           cfg.TTL,
		max:           cfg.MaxEntries,
		entries:       make(map[string]*cacheEntry),
		hits:          cfg.Metrics.Counter("naming.cache_hits"),
		misses:        cfg.Metrics.Counter("naming.cache_misses"),
		invalidations: cfg.Metrics.Counter("naming.cache_invalidations"),
		advances:      cfg.Metrics.Counter("naming.cache_advances"),
		now:           time.Now,
	}
	cfg.Metrics.Func("naming.cache_size", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.entries))
	})
	cfg.Metrics.Func("naming.cache_hit_rate", func() float64 {
		return c.Stats().HitRate
	})
	return c
}

// Lookup implements Resolver: it serves from the cache when it can and
// fills from the underlying resolver when it must.
func (c *Cache) Lookup(ctx context.Context, agentID string) (Record, error) {
	c.mu.Lock()
	c.lookupsTotal++
	if e, ok := c.entries[agentID]; ok && !c.expiredLocked(e) {
		rec := e.rec
		c.hitsTotal++
		c.mu.Unlock()
		c.hits.Inc()
		return rec, nil
	}
	c.mu.Unlock()
	c.misses.Inc()

	rec, err := c.r.Lookup(ctx, agentID)
	if err != nil {
		return Record{}, err
	}
	return c.fill(rec), nil
}

// fill installs a freshly resolved record, unless a strictly newer epoch
// is already cached (a migration notification beat the lookup response);
// it returns whichever record is authoritative.
func (c *Cache) fill(rec Record) Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[rec.AgentID]; ok && !c.expiredLocked(e) && e.rec.Epoch > rec.Epoch {
		return e.rec
	}
	c.evictForSpaceLocked(rec.AgentID)
	c.entries[rec.AgentID] = &cacheEntry{rec: rec, filled: c.now()}
	return rec
}

// Invalidate drops the agent's entry unconditionally. Used when the
// controller learns a location is wrong but not what replaced it (a SUS
// announcing an imminent migration, a connect that failed against the
// cached address).
func (c *Cache) Invalidate(agentID string) {
	c.mu.Lock()
	_, had := c.entries[agentID]
	delete(c.entries, agentID)
	if had {
		c.invalsTotal++
	}
	c.mu.Unlock()
	if had {
		c.invalidations.Inc()
	}
}

// InvalidateBelow drops the agent's entry if its epoch is strictly below
// epoch — the epoch-guarded form used when a migration notification
// carries the mover's new epoch, so a notification arriving late (after
// the cache already refilled with the new location) does not evict fresh
// state.
func (c *Cache) InvalidateBelow(agentID string, epoch uint64) {
	c.mu.Lock()
	e, ok := c.entries[agentID]
	dropped := ok && e.rec.Epoch < epoch
	if dropped {
		delete(c.entries, agentID)
		c.invalsTotal++
	}
	c.mu.Unlock()
	if dropped {
		c.invalidations.Inc()
	}
}

// Advance moves a cached entry forward to the mover's announced location
// at the given epoch — the piggyback optimisation: a RES/SUS_RES already
// carries the mover's new control and data addresses, so the peer can
// keep serving opens from cache without ever re-asking the registry.
// Address fields left empty by the announcement keep their cached values
// (a control message does not carry dock/mail addresses). Nothing is
// fabricated for agents not already cached, and entries at or past epoch
// are left alone.
func (c *Cache) Advance(agentID string, loc Location, epoch uint64) {
	if epoch == 0 {
		c.Invalidate(agentID)
		return
	}
	c.mu.Lock()
	e, ok := c.entries[agentID]
	if !ok || e.rec.Epoch >= epoch {
		c.mu.Unlock()
		return
	}
	merged := e.rec.Loc
	if loc.Host != "" {
		merged.Host = loc.Host
	}
	if loc.ControlAddr != "" {
		merged.ControlAddr = loc.ControlAddr
	}
	if loc.DataAddr != "" {
		merged.DataAddr = loc.DataAddr
	}
	if loc.DockAddr != "" {
		merged.DockAddr = loc.DockAddr
	}
	if loc.MailAddr != "" {
		merged.MailAddr = loc.MailAddr
	}
	// The host name is unknown when only addresses were announced; the
	// entry stays marked partial so an authoritative fill can overwrite it
	// even at an equal epoch.
	e.rec.Loc = merged
	e.rec.Epoch = epoch
	e.rec.UpdatedAt = c.now()
	e.filled = c.now()
	e.partial = true
	c.advancesTotal++
	c.mu.Unlock()
	c.advances.Inc()
}

// CacheStats is a point-in-time summary of cache effectiveness.
type CacheStats struct {
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Invalidations uint64  `json:"invalidations"`
	Advances      uint64  `json:"advances"`
	HitRate       float64 `json:"hit_rate"`
}

// Stats reports cumulative hit/miss accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries:       len(c.entries),
		Hits:          c.hitsTotal,
		Misses:        c.lookupsTotal - c.hitsTotal,
		Invalidations: c.invalsTotal,
		Advances:      c.advancesTotal,
	}
	if c.lookupsTotal > 0 {
		st.HitRate = float64(c.hitsTotal) / float64(c.lookupsTotal)
	}
	return st
}

func (c *Cache) expiredLocked(e *cacheEntry) bool {
	return c.ttl > 0 && c.now().Sub(e.filled) > c.ttl
}

// evictForSpaceLocked makes room for one more entry. Map iteration order
// is effectively random, which is eviction policy enough for a safety
// bound that steady state never reaches.
func (c *Cache) evictForSpaceLocked(adding string) {
	if len(c.entries) < c.max {
		return
	}
	if _, ok := c.entries[adding]; ok {
		return
	}
	for id := range c.entries {
		delete(c.entries, id)
		return
	}
}
