package naming

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"naplet/internal/rudp"
)

// This file provides a network front for the location service so that agent
// servers in separate processes can share one registry: a Server wraps a
// Service behind a reliable-UDP endpoint, and a Client implements Resolver
// (plus the write operations) against it.

type rpcOp uint8

const (
	opRegister rpcOp = iota + 1
	opUpdate
	opDeregister
	opLookup
	opWaitFor
	opTrace
)

type rpcRequest struct {
	Op      rpcOp
	AgentID string
	Loc     Location
	Epoch   uint64
	// TimeoutMs bounds a WaitFor on the server side.
	TimeoutMs int64
}

type rpcResponse struct {
	Err    string
	Record Record
	Trace  []Move
}

// Server exposes a Service over the control-channel transport.
type Server struct {
	svc *Service
	ep  *rudp.Endpoint
}

// NewServer starts serving svc on addr ("" for an ephemeral loopback port).
func NewServer(svc *Service, addr string) (*Server, error) {
	return NewServerWithConfig(svc, addr, rudp.Config{})
}

// NewServerWithConfig is NewServer with an explicit transport
// configuration — the seam fault-injection tests and cluster replicas use
// to shape the control channel (e.g. a seeded netem DropFn).
func NewServerWithConfig(svc *Service, addr string, rcfg rudp.Config) (*Server, error) {
	s := &Server{svc: svc}
	ep, err := rudp.Listen(addr, s.handle, rcfg)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	return s, nil
}

// Addr returns the server's UDP address string.
func (s *Server) Addr() string { return s.ep.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.ep.Close() }

func (s *Server) handle(_ *net.UDPAddr, reqBytes []byte) []byte {
	var req rpcRequest
	if err := gob.NewDecoder(bytes.NewReader(reqBytes)).Decode(&req); err != nil {
		return encodeResponse(rpcResponse{Err: "naming: bad request: " + err.Error()})
	}
	var resp rpcResponse
	switch req.Op {
	case opRegister:
		if err := s.svc.Register(req.AgentID, req.Loc); err != nil {
			resp.Err = err.Error()
		}
	case opUpdate:
		if err := s.svc.Update(req.AgentID, req.Loc, req.Epoch); err != nil {
			resp.Err = err.Error()
		}
	case opDeregister:
		if err := s.svc.Deregister(req.AgentID); err != nil {
			resp.Err = err.Error()
		}
	case opLookup:
		rec, err := s.svc.Lookup(context.Background(), req.AgentID)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Record = rec
		}
	case opWaitFor:
		// Bounded server-side wait: the handler runs on its own goroutine,
		// and duplicate requests are answered from the in-progress cache,
		// so blocking here is safe. The bound stays under the client's
		// retransmission budget.
		timeout := time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout <= 0 || timeout > 3*time.Second {
			timeout = 3 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		rec, err := s.svc.WaitFor(ctx, req.AgentID)
		cancel()
		if err != nil {
			resp.Err = ErrNotFound.Error() + ": wait expired for " + req.AgentID
		} else {
			resp.Record = rec
		}
	case opTrace:
		resp.Trace = s.svc.Trace(req.AgentID)
	default:
		resp.Err = fmt.Sprintf("naming: unknown op %d", req.Op)
	}
	return encodeResponse(resp)
}

func encodeResponse(resp rpcResponse) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		// A response struct of plain values cannot fail to encode; treat it
		// as a programming error.
		panic("naming: encoding response: " + err.Error())
	}
	return buf.Bytes()
}

// Client talks to a remote Server. It implements Resolver.
type Client struct {
	serverAddr string
	ep         *rudp.Endpoint
}

// NewClient creates a client of the location server at serverAddr.
func NewClient(serverAddr string) (*Client, error) {
	return NewClientWithConfig(serverAddr, rudp.Config{})
}

// NewClientWithConfig is NewClient with an explicit transport
// configuration, mirroring NewServerWithConfig.
func NewClientWithConfig(serverAddr string, rcfg rudp.Config) (*Client, error) {
	ep, err := rudp.Listen("127.0.0.1:0", nil, rcfg)
	if err != nil {
		return nil, err
	}
	return &Client{serverAddr: serverAddr, ep: ep}, nil
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.ep.Close() }

func (c *Client) call(ctx context.Context, req rpcRequest) (rpcResponse, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return rpcResponse{}, fmt.Errorf("naming: encoding request: %w", err)
	}
	respBytes, err := c.ep.Request(ctx, c.serverAddr, buf.Bytes())
	if err != nil {
		return rpcResponse{}, err
	}
	var resp rpcResponse
	if err := gob.NewDecoder(bytes.NewReader(respBytes)).Decode(&resp); err != nil {
		return rpcResponse{}, fmt.Errorf("naming: decoding response: %w", err)
	}
	if resp.Err != "" {
		return resp, remoteError(resp.Err)
	}
	return resp, nil
}

// remoteError maps a serialized error string back onto the package's
// sentinel errors so errors.Is keeps working across the wire.
func remoteError(msg string) error {
	switch {
	case strings.Contains(msg, ErrNotFound.Error()):
		return fmt.Errorf("%w (remote: %s)", ErrNotFound, msg)
	case strings.Contains(msg, ErrStale.Error()):
		return fmt.Errorf("%w (remote: %s)", ErrStale, msg)
	case strings.Contains(msg, ErrExists.Error()):
		return fmt.Errorf("%w (remote: %s)", ErrExists, msg)
	default:
		return fmt.Errorf("naming: remote error: %s", msg)
	}
}

// Register registers an agent on the remote service.
func (c *Client) Register(ctx context.Context, agentID string, loc Location) error {
	_, err := c.call(ctx, rpcRequest{Op: opRegister, AgentID: agentID, Loc: loc})
	return err
}

// Update reports an agent migration to the remote service.
func (c *Client) Update(ctx context.Context, agentID string, loc Location, epoch uint64) error {
	_, err := c.call(ctx, rpcRequest{Op: opUpdate, AgentID: agentID, Loc: loc, Epoch: epoch})
	return err
}

// Deregister removes an agent from the remote service.
func (c *Client) Deregister(ctx context.Context, agentID string) error {
	_, err := c.call(ctx, rpcRequest{Op: opDeregister, AgentID: agentID})
	return err
}

// WaitFor blocks (up to timeout, capped at 3s per round trip) until the
// agent is registered, retrying rounds until ctx expires.
func (c *Client) WaitFor(ctx context.Context, agentID string, timeout time.Duration) (Record, error) {
	deadline := time.Now().Add(timeout)
	for {
		round := time.Until(deadline)
		if round <= 0 {
			return Record{}, fmt.Errorf("%w: %q (wait expired)", ErrNotFound, agentID)
		}
		if round > 3*time.Second {
			round = 3 * time.Second
		}
		resp, err := c.call(ctx, rpcRequest{Op: opWaitFor, AgentID: agentID, TimeoutMs: round.Milliseconds()})
		if err == nil {
			return resp.Record, nil
		}
		if ctx.Err() != nil {
			return Record{}, ctx.Err()
		}
		// A lost transport round is retriable while time remains — the
		// server-side wait is idempotent.
		if errors.Is(err, rudp.ErrTimeout) {
			continue
		}
		if !errors.Is(err, ErrNotFound) {
			return Record{}, err
		}
	}
}

// Lookup implements Resolver against the remote service.
func (c *Client) Lookup(ctx context.Context, agentID string) (Record, error) {
	resp, err := c.call(ctx, rpcRequest{Op: opLookup, AgentID: agentID})
	if err != nil {
		return Record{}, err
	}
	return resp.Record, nil
}

// Trace fetches an agent's movement history from the remote service.
func (c *Client) Trace(ctx context.Context, agentID string) ([]Move, error) {
	resp, err := c.call(ctx, rpcRequest{Op: opTrace, AgentID: agentID})
	if err != nil {
		return nil, err
	}
	return resp.Trace, nil
}
