package agent

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"
)

// TestDockSurvivesGarbage throws malformed bundles at the dock listener
// and checks the host keeps working.
func TestDockSurvivesGarbage(t *testing.T) {
	env := newEnv(t, "h1")
	h := env.host("h1")

	junk := [][]byte{
		{},
		{0x01},
		{0xff, 0xff, 0xff, 0xff}, // oversize length prefix
		append([]byte{0, 0, 0, 4}, []byte("junk")...),
		append([]byte{0, 0, 0, 1}, 0x00),
	}
	for _, j := range junk {
		conn, err := net.Dial("tcp", h.DockAddr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(j)
		conn.Close()
	}
	// A half-open connection that sends nothing (the dock read deadline
	// must reap it without wedging the accept loop).
	idle, err := net.Dial("tcp", h.DockAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	// The host still launches and finishes agents.
	if err := h.Launch("after-junk", &hopper{}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "after-junk")
}

// TestDockRejectsBundleWithoutBehavior sends a structurally valid but
// incomplete bundle and expects a rejection string back.
func TestDockRejectsBundleWithoutBehavior(t *testing.T) {
	env := newEnv(t, "h1")
	h := env.host("h1")

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&bundle{AgentID: "ghost", Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", h.DockAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(payload.Len()))
	conn.Write(lenb[:])
	conn.Write(payload.Bytes())

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, lenb[:]); err != nil {
		t.Fatal(err)
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n == 0 {
		t.Fatal("incomplete bundle accepted")
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(conn, msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(msg, []byte("missing")) {
		t.Fatalf("rejection = %q", msg)
	}
}

// TestMigrationDelayModelsTransferCost checks the configured delay is
// actually spent during a hop.
func TestMigrationDelayModelsTransferCost(t *testing.T) {
	// Two hosts with a 60ms migration delay.
	shared := newEnv(t, "d1", "d2")
	for _, name := range []string{"d1", "d2"} {
		shared.host(name).cfg.MigrationDelay = 60 * time.Millisecond
	}
	start := time.Now()
	if err := shared.host("d1").Launch("slowpoke", &hopper{Docks: []string{shared.host("d2").DockAddr()}}); err != nil {
		t.Fatal(err)
	}
	shared.awaitGone(t, "slowpoke")
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("hop took %v, migration delay not applied", elapsed)
	}
}

// TestWaitLocalUnknownAgent covers the error path.
func TestWaitLocalUnknownAgent(t *testing.T) {
	env := newEnv(t, "h1")
	if _, err := env.host("h1").WaitLocal(context.Background(), "ghost"); err == nil {
		t.Fatal("WaitLocal on absent agent succeeded")
	}
}

// TestLocationRecord checks the advertised location is fully populated.
func TestLocationRecord(t *testing.T) {
	env := newEnv(t, "h1")
	h := env.host("h1")
	loc := h.Location()
	if loc.Host != "h1" || loc.DockAddr == "" {
		t.Fatalf("location = %+v", loc)
	}
}

// TestClusterSecretAuthenticatesDock checks that hosts sharing a secret
// exchange agents, hosts with mismatched secrets refuse them, and a
// rejected migration re-arrives locally.
func TestClusterSecretAuthenticatesDock(t *testing.T) {
	env := newEnv(t, "c1", "c2", "c3")
	secret := []byte("deployment-secret")
	env.host("c1").cfg.ClusterSecret = secret
	env.host("c2").cfg.ClusterSecret = secret
	env.host("c3").cfg.ClusterSecret = []byte("different-secret")

	// Matching secrets: migration succeeds.
	if err := env.host("c1").Launch("ok-agent", &hopper{Docks: []string{env.host("c2").DockAddr()}}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "ok-agent")
	got := visits("ok-agent")
	if len(got) != 2 || got[1] != "c2#2" {
		t.Fatalf("visits = %v", got)
	}

	// Mismatched secret: the destination refuses, the agent re-arrives
	// locally and finishes on its origin host.
	if err := env.host("c1").Launch("refused-agent", &hopper{Docks: []string{env.host("c3").DockAddr()}}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "refused-agent")
	got = visits("refused-agent")
	if len(got) != 2 || got[1] != "c1#1" {
		t.Fatalf("visits = %v (agent should have stayed on c1)", got)
	}

	// No secret at all against a secured host: refused too.
	env.host("c2").cfg.ClusterSecret = nil
	if err := env.host("c2").Launch("untagged", &hopper{Docks: []string{env.host("c1").DockAddr()}}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "untagged")
	got = visits("untagged")
	if len(got) != 2 || got[1] != "c2#1" {
		t.Fatalf("visits = %v (untagged bundle should be refused)", got)
	}
}
