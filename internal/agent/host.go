package agent

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"naplet/internal/journal"
	"naplet/internal/naming"
	"naplet/internal/obs"
	"naplet/internal/security"
)

// Directory is the slice of the location service the agent runtime needs.
// Both naming.Local (in-process) and naming.Client (remote) satisfy it.
type Directory interface {
	Register(ctx context.Context, agentID string, loc naming.Location) error
	Update(ctx context.Context, agentID string, loc naming.Location, epoch uint64) error
	Deregister(ctx context.Context, agentID string) error
	Lookup(ctx context.Context, agentID string) (naming.Record, error)
}

// Hook lets middleware layers participate in agent migration. The
// NapletSocket controller is the canonical hook: PreDepart suspends the
// agent's connections and serializes them (including any buffered
// undelivered data); PostArrive reconstructs and resumes them on the
// destination host.
type Hook interface {
	// HookName keys the hook's blob inside the migration bundle; it must be
	// identical on every host.
	HookName() string
	// PreDepart runs on the origin host before the agent is shipped.
	PreDepart(agentID string) ([]byte, error)
	// PostArrive runs on the destination host after the bundle is decoded
	// and the location service updated, before Run is re-entered.
	PostArrive(agentID string, blob []byte) error
	// OnTerminate runs when the agent finishes (normally or with an error).
	OnTerminate(agentID string)
}

// Config configures a Host.
type Config struct {
	// Name is the host's human-readable name.
	Name string
	// DockAddr is the TCP address of the docking listener; empty means an
	// ephemeral loopback port.
	DockAddr string
	// ControlAddr and DataAddr advertise the co-located NapletSocket
	// controller's endpoints in the host's location record.
	ControlAddr string
	DataAddr    string
	// MailAddr advertises the co-located post office, when one runs.
	MailAddr string
	// Directory is the agent location service (required).
	Directory Directory
	// Registry holds the behaviour types this host can execute (required).
	Registry *Registry
	// Guard issues agent credentials and enforces policy (required).
	Guard *security.Guard
	// MigrationDelay, when positive, is slept during each outbound
	// migration to model the cost of shipping agent code and state over a
	// real network (the paper's T_a-migrate, 220ms on their testbed).
	MigrationDelay time.Duration
	// DockDialTimeout bounds the TCP dial to a destination dock when
	// shipping an agent. Default 10s.
	DockDialTimeout time.Duration
	// BundleTimeout bounds the transfer of one migration bundle in either
	// direction (send and receive). Default 30s.
	BundleTimeout time.Duration
	// Journal, when non-nil, receives agent checkpoints (behaviour state
	// plus epoch, batched atomically with connection state from any
	// ConnCheckpointer hooks) and feeds Recover after a restart.
	Journal *journal.Journal
	// ClusterSecret, when non-empty, authenticates the docking channel:
	// every outbound bundle carries an HMAC-SHA256 tag under the secret and
	// inbound bundles without a valid tag are rejected. All hosts of a
	// deployment must share the secret.
	ClusterSecret []byte
	// Logf, when non-nil, receives host diagnostics. It also backs each
	// agent Context's Logf.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives leveled host diagnostics and takes
	// precedence over Logf for the runtime's own lines (Context.Logf keeps
	// using Logf so behaviour output stays unprefixed).
	Logger *obs.Logger
	// Metrics, when non-nil, receives the agent runtime's counters: agent
	// launches, terminations, dispatches, and migration latency.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a span tree per outbound migration
	// (depart, transfer) and publishes the active migration trace under the
	// agent id so co-located hooks (the NapletSocket controller) join it.
	Tracer *obs.Tracer
}

// maxBundleSize bounds an inbound migration bundle.
const maxBundleSize = 64 << 20

func (c Config) dockDialTimeout() time.Duration {
	if c.DockDialTimeout > 0 {
		return c.DockDialTimeout
	}
	return 10 * time.Second
}

func (c Config) bundleTimeout() time.Duration {
	if c.BundleTimeout > 0 {
		return c.BundleTimeout
	}
	return 30 * time.Second
}

// bundle is what travels between docks.
type bundle struct {
	AgentID  string
	Epoch    uint64
	Behavior Behavior
	// Blobs carries each migration hook's serialized state, keyed by hook
	// name.
	Blobs map[string][]byte
}

// LocalExit describes why an agent left this host.
type LocalExit struct {
	Status Status
	// Dest is the docking address the agent migrated to (StatusMigrating).
	Dest string
	// Err is the failure cause (StatusFailed).
	Err error
}

type running struct {
	id     string
	status Status
	cancel context.CancelFunc
	// exited is closed when the agent leaves this host; exit holds why.
	exited chan struct{}
	exit   LocalExit
}

// Host is an agent server: it runs resident agents, accepts arriving agents
// on its dock, and ships departing agents to other docks.
type Host struct {
	cfg    Config
	log    *obs.Logger
	dockLn net.Listener

	// Timeouts resolved once at construction: the dock accept loop reads
	// them concurrently with everything else, and re-reading cfg there
	// would race with tests that tweak cfg fields after NewHost.
	dockDialTO, bundleTO time.Duration

	// Runtime metrics; nil-safe, so call sites stay unconditional.
	launches, doneCount, failedCount       *obs.Counter
	migrations, migrationFailures, arrived *obs.Counter
	checkpoints, recoveries                *obs.Counter
	migrateMs                              *obs.Histogram

	mu     sync.Mutex
	agents map[string]*running
	hooks  []Hook
	ext    map[string]any
	closed bool

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewHost creates and starts a host: the dock listener is live when NewHost
// returns.
func NewHost(cfg Config) (*Host, error) {
	if cfg.Directory == nil || cfg.Registry == nil || cfg.Guard == nil {
		return nil, errors.New("agent: Config requires Directory, Registry, and Guard")
	}
	if cfg.Name == "" {
		return nil, errors.New("agent: Config requires a host name")
	}
	addr := cfg.DockAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: dock listener: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &Host{
		cfg:        cfg,
		log:        resolveLogger(cfg).With("host", cfg.Name),
		agents:     make(map[string]*running),
		ext:        make(map[string]any),
		rootCtx:    ctx,
		cancel:     cancel,
		dockDialTO: cfg.dockDialTimeout(),
		bundleTO:   cfg.bundleTimeout(),
	}
	h.dockLn = ln
	met := cfg.Metrics
	h.launches = met.Counter("agent.launches")
	h.doneCount = met.Counter("agent.done")
	h.failedCount = met.Counter("agent.failed")
	h.migrations = met.Counter("agent.migrations")
	h.migrationFailures = met.Counter("agent.migration_failures")
	h.arrived = met.Counter("agent.arrivals")
	h.checkpoints = met.Counter("agent.checkpoints")
	h.recoveries = met.Counter("agent.recoveries")
	h.migrateMs = met.Histogram("agent.migrate_ms")
	met.Func("agent.resident", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(len(h.agents))
	})
	h.wg.Add(1)
	go h.acceptDocks()
	return h, nil
}

// resolveLogger builds the host's leveled logger: the configured Logger,
// else the Logf compatibility shim at Debug, else the standard library
// logger at Info.
func resolveLogger(cfg Config) *obs.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	if cfg.Logf != nil {
		return obs.NewLogger(cfg.Logf, obs.LevelDebug)
	}
	return obs.NewLogger(log.Printf, obs.LevelInfo)
}

// Name returns the host's name.
func (h *Host) Name() string { return h.cfg.Name }

// DockAddr returns the docking listener's address.
func (h *Host) DockAddr() string { return h.dockLn.Addr().String() }

// Location returns the host's advertised location record.
func (h *Host) Location() naming.Location {
	return naming.Location{
		Host:        h.cfg.Name,
		ControlAddr: h.cfg.ControlAddr,
		DataAddr:    h.cfg.DataAddr,
		DockAddr:    h.DockAddr(),
		MailAddr:    h.cfg.MailAddr,
	}
}

// Guard returns the host's security guard.
func (h *Host) Guard() *security.Guard { return h.cfg.Guard }

// Directory returns the host's location service handle.
func (h *Host) Directory() Directory { return h.cfg.Directory }

// AddHook registers a migration hook. Hooks run in registration order on
// departure and arrival.
func (h *Host) AddHook(hook Hook) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hooks = append(h.hooks, hook)
}

// noteLocationEpoch tells hooks that track directory epochs (the
// NapletSocket controller's migration-aware location caching, matched
// structurally) which epoch this host's directory entry for the agent now
// carries.
func (h *Host) noteLocationEpoch(agentID string, epoch uint64) {
	h.mu.Lock()
	hooks := append([]Hook(nil), h.hooks...)
	h.mu.Unlock()
	for _, hook := range hooks {
		if n, ok := hook.(interface{ NoteLocationEpoch(string, uint64) }); ok {
			n.NoteLocationEpoch(agentID, epoch)
		}
	}
}

// SetExtension publishes a host service to behaviours under name.
func (h *Host) SetExtension(name string, svc any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ext[name] = svc
}

// Extension fetches a host service by name, or nil.
func (h *Host) Extension(name string) any {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ext[name]
}

// Close shuts the host down: the dock stops accepting, resident agents'
// contexts are cancelled, and Close blocks until agent goroutines return.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	h.cancel()
	err := h.dockLn.Close()
	h.wg.Wait()
	return err
}

// Launch starts a new agent with the given id and behaviour on this host.
func (h *Host) Launch(agentID string, b Behavior) error {
	if agentID == "" {
		return errors.New("agent: empty agent id")
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("agent: host closed")
	}
	if _, ok := h.agents[agentID]; ok {
		h.mu.Unlock()
		return fmt.Errorf("agent: %q already resident on %s", agentID, h.cfg.Name)
	}
	h.mu.Unlock()

	if err := h.cfg.Directory.Register(h.rootCtx, agentID, h.Location()); err != nil {
		return fmt.Errorf("agent: registering %q: %w", agentID, err)
	}
	h.noteLocationEpoch(agentID, 1)
	h.launches.Inc()
	h.log.Infof("agent %s launched", agentID)
	if err := h.checkpointAgent(agentID, b, 1); err != nil {
		h.log.Warnf("%v", err)
	}
	h.startAgent(agentID, b, 1)
	return nil
}

// startAgent begins executing a behaviour at the given epoch. The agent
// must already be registered/updated in the directory.
func (h *Host) startAgent(agentID string, b Behavior, epoch uint64) {
	ctx, cancel := context.WithCancel(h.rootCtx)
	r := &running{id: agentID, status: StatusRunning, cancel: cancel, exited: make(chan struct{})}
	h.mu.Lock()
	h.agents[agentID] = r
	h.mu.Unlock()

	h.wg.Add(1)
	go h.runAgent(ctx, r, b, epoch)
}

func (h *Host) runAgent(ctx context.Context, r *running, b Behavior, epoch uint64) {
	defer h.wg.Done()
	actx := &Context{
		host:     h,
		agentID:  r.id,
		epoch:    epoch,
		cred:     h.cfg.Guard.IssueCredential(r.id),
		behavior: b,
		ctx:      ctx,
	}
	err := b.Run(actx)
	switch {
	case errors.Is(err, ErrMigrate):
		h.migrate(r, b, epoch, actx.migrateDest)
	case err == nil:
		h.doneCount.Inc()
		h.log.Infof("agent %s finished", r.id)
		h.finish(r, LocalExit{Status: StatusDone})
	default:
		h.failedCount.Inc()
		h.log.Errorf("agent %s failed: %v", r.id, err)
		h.finish(r, LocalExit{Status: StatusFailed, Err: err})
	}
}

// finish handles normal or failed termination.
func (h *Host) finish(r *running, exit LocalExit) {
	h.mu.Lock()
	hooks := append([]Hook(nil), h.hooks...)
	h.mu.Unlock()
	for _, hook := range hooks {
		hook.OnTerminate(r.id)
	}
	if err := h.cfg.Directory.Deregister(context.Background(), r.id); err != nil {
		h.log.Warnf("deregistering %s: %v", r.id, err)
	}
	h.dropAgentJournal(r.id)
	h.remove(r, exit)
}

func (h *Host) remove(r *running, exit LocalExit) {
	h.mu.Lock()
	r.status = exit.Status
	r.exit = exit
	delete(h.agents, r.id)
	h.mu.Unlock()
	close(r.exited)
}

// migrate ships the agent to destDock. On any failure the agent re-arrives
// locally (its connections are resumed in place) and keeps running.
func (h *Host) migrate(r *running, b Behavior, epoch uint64, destDock string) {
	start := time.Now()
	h.mu.Lock()
	r.status = StatusMigrating
	hooks := append([]Hook(nil), h.hooks...)
	h.mu.Unlock()

	// Root the migration trace and publish it under the agent id: hooks
	// (PreDepart suspends) start their spans as children of this root, and
	// the sealed trace context travels in the bundle so arrival work on the
	// destination joins the same trace.
	root := h.cfg.Tracer.StartTrace("migrate " + r.id)
	root.Annotate("dest=" + destDock)
	h.cfg.Tracer.SetActive(r.id, root.Context())
	defer func() {
		h.cfg.Tracer.ClearActive(r.id)
		root.End()
	}()

	blobs := make(map[string][]byte, len(hooks))
	departed := make([]Hook, 0, len(hooks))
	fail := func(err error) {
		root.Annotate("failed: " + err.Error())
		h.migrationFailures.Inc()
		h.log.Warnf("migration of %s to %s failed: %v; re-arriving locally", r.id, destDock, err)
		for _, hook := range departed {
			if aerr := hook.PostArrive(r.id, blobs[hook.HookName()]); aerr != nil {
				h.log.Warnf("local re-arrive hook %s for %s: %v", hook.HookName(), r.id, aerr)
			}
		}
		h.mu.Lock()
		r.status = StatusRunning
		h.mu.Unlock()
		h.wg.Add(1)
		go h.runAgent(h.rootCtx, r, b, epoch)
	}

	for _, hook := range hooks {
		blob, err := hook.PreDepart(r.id)
		if err != nil {
			fail(fmt.Errorf("hook %s PreDepart: %w", hook.HookName(), err))
			return
		}
		blobs[hook.HookName()] = blob
		departed = append(departed, hook)
	}

	if h.cfg.MigrationDelay > 0 {
		select {
		case <-time.After(h.cfg.MigrationDelay):
		case <-h.rootCtx.Done():
		}
	}

	// Vacate the residents table before shipping: once the destination has
	// the agent, it may hop straight back here, and that arrival must not
	// collide with our own stale entry.
	h.mu.Lock()
	delete(h.agents, r.id)
	h.mu.Unlock()

	bd := bundle{AgentID: r.id, Epoch: epoch + 1, Behavior: b, Blobs: blobs}
	xfer := root.Child("transfer")
	xfer.Annotate("dest=" + destDock)
	if err := sendBundle(destDock, &bd, h.cfg.ClusterSecret, h.dockDialTO, h.bundleTO); err != nil {
		xfer.Annotate("failed: " + err.Error())
		xfer.End()
		h.mu.Lock()
		h.agents[r.id] = r
		h.mu.Unlock()
		fail(err)
		return
	}
	xfer.End()
	h.migrations.Inc()
	h.migrateMs.ObserveDuration(time.Since(start))
	h.log.Infof("agent %s migrated to %s in %v (epoch %d)",
		r.id, destDock, time.Since(start).Round(time.Microsecond), epoch+1)
	// The agent now lives at the destination; a restart here must not
	// resurrect it.
	h.dropAgentJournal(r.id)
	h.remove(r, LocalExit{Status: StatusMigrating, Dest: destDock})
}

// dockTag computes the docking-channel authentication tag of a bundle's
// bytes under the cluster secret.
func dockTag(secret, body []byte) [sha256.Size]byte {
	m := hmac.New(sha256.New, secret)
	m.Write([]byte("naplet dock bundle"))
	m.Write(body)
	var tag [sha256.Size]byte
	copy(tag[:], m.Sum(nil))
	return tag
}

// sendBundle dials a dock and delivers one agent bundle, appending the
// cluster authentication tag when a secret is configured.
func sendBundle(dockAddr string, bd *bundle, secret []byte, dialTO, xferTO time.Duration) error {
	conn, err := net.DialTimeout("tcp", dockAddr, dialTO)
	if err != nil {
		return fmt.Errorf("agent: dialing dock %s: %w", dockAddr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(xferTO))

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(bd); err != nil {
		return fmt.Errorf("agent: encoding bundle: %w", err)
	}
	body := buf.Bytes()
	if len(secret) > 0 {
		tag := dockTag(secret, body)
		body = append(body, tag[:]...)
	}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(body)))
	if _, err := conn.Write(lenb[:]); err != nil {
		return err
	}
	if _, err := conn.Write(body); err != nil {
		return err
	}
	// The dock replies with a length-prefixed status string; empty = OK.
	status, err := readLenPrefixed(conn, 1<<16)
	if err != nil {
		return fmt.Errorf("agent: reading dock reply: %w", err)
	}
	if len(status) != 0 {
		return fmt.Errorf("agent: dock %s rejected agent: %s", dockAddr, status)
	}
	return nil
}

func readLenPrefixed(r io.Reader, limit uint32) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > limit {
		return nil, fmt.Errorf("agent: message of %d bytes exceeds limit %d", n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Accept-error backoff bounds for the dock listener, matching the
// redirector: transient errors (EMFILE, ECONNABORTED) back off
// exponentially instead of hot-looping.
const (
	dockBackoffMin = 5 * time.Millisecond
	dockBackoffMax = 1 * time.Second
)

func (h *Host) acceptDocks() {
	defer h.wg.Done()
	var backoff time.Duration
	for {
		conn, err := h.dockLn.Accept()
		if err != nil {
			select {
			case <-h.rootCtx.Done():
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff == 0 {
				backoff = dockBackoffMin
			} else if backoff *= 2; backoff > dockBackoffMax {
				backoff = dockBackoffMax
			}
			h.log.Warnf("dock accept error: %v; retrying in %v", err, backoff)
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-h.rootCtx.Done():
				timer.Stop()
				return
			}
			continue
		}
		backoff = 0
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.handleDock(conn)
		}()
	}
}

// handleDock receives one arriving agent.
func (h *Host) handleDock(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(h.bundleTO))
	reply := func(msg string) {
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(len(msg)))
		conn.Write(lenb[:])
		io.WriteString(conn, msg)
	}

	raw, err := readLenPrefixed(conn, maxBundleSize)
	if err != nil {
		h.log.Warnf("dock read: %v", err)
		return
	}
	if len(h.cfg.ClusterSecret) > 0 {
		if len(raw) < sha256.Size {
			reply("bundle missing cluster tag")
			return
		}
		body, got := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
		want := dockTag(h.cfg.ClusterSecret, body)
		if subtle.ConstantTimeCompare(want[:], got) != 1 {
			reply("cluster authentication failed")
			return
		}
		raw = body
	}
	var bd bundle
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&bd); err != nil {
		reply("decoding bundle: " + err.Error())
		return
	}
	if bd.AgentID == "" || bd.Behavior == nil {
		reply("bundle missing agent id or behaviour")
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		reply("host closed")
		return
	}
	if _, ok := h.agents[bd.AgentID]; ok {
		h.mu.Unlock()
		reply(fmt.Sprintf("agent %q already resident", bd.AgentID))
		return
	}
	hooks := append([]Hook(nil), h.hooks...)
	h.mu.Unlock()

	// Update the location service first: once we are the agent's location,
	// resume traffic and new dials find us.
	if err := h.cfg.Directory.Update(h.rootCtx, bd.AgentID, h.Location(), bd.Epoch); err != nil {
		reply("location update: " + err.Error())
		return
	}
	// Hooks learn the epoch before PostArrive runs, so the SUS_RES/RES
	// messages sent while resuming the restored connections already carry
	// the post-migration epoch for their receivers' location caches.
	h.noteLocationEpoch(bd.AgentID, bd.Epoch)
	for _, hook := range hooks {
		if err := hook.PostArrive(bd.AgentID, bd.Blobs[hook.HookName()]); err != nil {
			reply(fmt.Sprintf("hook %s PostArrive: %v", hook.HookName(), err))
			return
		}
	}
	h.arrived.Inc()
	h.log.Infof("agent %s arrived (epoch %d, %d bundle bytes)", bd.AgentID, bd.Epoch, len(raw))
	if err := h.checkpointAgent(bd.AgentID, bd.Behavior, bd.Epoch); err != nil {
		h.log.Warnf("%v", err)
	}
	h.startAgent(bd.AgentID, bd.Behavior, bd.Epoch)
	reply("")
}

// AgentStatus reports the status of a resident agent.
func (h *Host) AgentStatus(agentID string) (Status, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.agents[agentID]
	if !ok {
		return 0, false
	}
	return r.status, true
}

// Residents returns the ids of agents currently on this host.
func (h *Host) Residents() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.agents))
	for id := range h.agents {
		out = append(out, id)
	}
	return out
}

// WaitLocal blocks until the named agent leaves this host (migrates,
// finishes, or fails) and reports why. It errors immediately if the agent
// is not resident.
func (h *Host) WaitLocal(ctx context.Context, agentID string) (LocalExit, error) {
	h.mu.Lock()
	r, ok := h.agents[agentID]
	h.mu.Unlock()
	if !ok {
		return LocalExit{}, fmt.Errorf("agent: %q not resident on %s", agentID, h.cfg.Name)
	}
	select {
	case <-r.exited:
		return r.exit, nil
	case <-ctx.Done():
		return LocalExit{}, ctx.Err()
	}
}

// Kill cancels a resident agent's context. The behaviour is expected to
// notice Done() and return; Kill does not forcibly stop it.
func (h *Host) Kill(agentID string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.agents[agentID]
	if !ok {
		return fmt.Errorf("agent: %q not resident", agentID)
	}
	r.cancel()
	return nil
}
