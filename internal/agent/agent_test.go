package agent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"naplet/internal/naming"
	"naplet/internal/security"
)

// testEnv bundles the shared services of a simulated deployment.
type testEnv struct {
	svc      *naming.Service
	registry *Registry
	hosts    []*Host
}

func newEnv(t *testing.T, hostNames ...string) *testEnv {
	t.Helper()
	env := &testEnv{svc: naming.NewService(), registry: NewRegistry()}
	registerTestBehaviors(env.registry)
	for _, name := range hostNames {
		guard, err := security.NewGuard(security.NewStore(security.AllowAgentAll()...))
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHost(Config{
			Name:      name,
			Directory: naming.Local{Svc: env.svc},
			Registry:  env.registry,
			Guard:     guard,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		env.hosts = append(env.hosts, h)
	}
	return env
}

func (e *testEnv) host(name string) *Host {
	for _, h := range e.hosts {
		if h.Name() == name {
			return h
		}
	}
	return nil
}

// awaitGone polls the directory until the agent is deregistered.
func (e *testEnv) awaitGone(t *testing.T, agentID string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := e.svc.Lookup(context.Background(), agentID); errors.Is(err, naming.ErrNotFound) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("agent %s never deregistered", agentID)
}

// ---- test behaviours ----

// results collects behaviour outputs across hops; keyed by agent id.
var results = struct {
	sync.Mutex
	visited map[string][]string
}{visited: make(map[string][]string)}

func recordVisit(agentID, host string) {
	results.Lock()
	defer results.Unlock()
	results.visited[agentID] = append(results.visited[agentID], host)
}

func visits(agentID string) []string {
	results.Lock()
	defer results.Unlock()
	return append([]string(nil), results.visited[agentID]...)
}

// hopper walks a fixed itinerary of dock addresses, then terminates.
type hopper struct {
	Docks []string
}

func (hp *hopper) Run(ctx *Context) error {
	recordVisit(ctx.AgentID(), fmt.Sprintf("%s#%d", ctx.HostName(), ctx.Epoch()))
	if len(hp.Docks) == 0 {
		return nil
	}
	next := hp.Docks[0]
	hp.Docks = hp.Docks[1:]
	return ctx.MigrateTo(next)
}

// failer fails immediately with a recognizable error.
type failer struct{}

var errBoom = errors.New("boom")

func (failer) Run(*Context) error { return errBoom }

// badHopper tries to migrate to an unreachable dock once, then terminates.
type badHopper struct {
	Tried bool
}

func (b *badHopper) Run(ctx *Context) error {
	recordVisit(ctx.AgentID(), ctx.HostName())
	if !b.Tried {
		b.Tried = true
		return ctx.MigrateTo("127.0.0.1:1") // nothing listens here
	}
	return nil
}

// sleeper runs until its context is cancelled.
type sleeper struct{}

func (sleeper) Run(ctx *Context) error {
	<-ctx.Done()
	return nil
}

func registerTestBehaviors(r *Registry) {
	r.Register("test.hopper", &hopper{})
	r.Register("test.failer", failer{})
	r.Register("test.badHopper", &badHopper{})
	r.Register("test.sleeper", sleeper{})
}

// ---- tests ----

func TestLaunchAndTerminate(t *testing.T) {
	env := newEnv(t, "h1")
	if err := env.host("h1").Launch("a1", &hopper{}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "a1")
	got := visits("a1")
	if len(got) != 1 || got[0] != "h1#1" {
		t.Fatalf("visits = %v", got)
	}
}

func TestLaunchRegistersLocation(t *testing.T) {
	env := newEnv(t, "h1")
	if err := env.host("h1").Launch("a2", sleeper{}); err != nil {
		t.Fatal(err)
	}
	rec, err := env.svc.Lookup(context.Background(), "a2")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loc.Host != "h1" || rec.Epoch != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Loc.DockAddr != env.host("h1").DockAddr() {
		t.Fatalf("dock addr = %q, want %q", rec.Loc.DockAddr, env.host("h1").DockAddr())
	}
}

func TestMigrationAcrossThreeHosts(t *testing.T) {
	env := newEnv(t, "h1", "h2", "h3")
	itinerary := []string{env.host("h2").DockAddr(), env.host("h3").DockAddr()}
	if err := env.host("h1").Launch("walker", &hopper{Docks: itinerary}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "walker")
	got := visits("walker")
	want := []string{"h1#1", "h2#2", "h3#3"}
	if len(got) != len(want) {
		t.Fatalf("visits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visits = %v, want %v", got, want)
		}
	}
	// The trace in the directory recorded every hop with growing epochs.
	tr := env.svc.Trace("walker")
	if len(tr) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	for i, m := range tr {
		if m.Epoch != uint64(i+1) {
			t.Fatalf("trace epoch[%d] = %d", i, m.Epoch)
		}
	}
}

func TestWaitLocalReportsMigration(t *testing.T) {
	env := newEnv(t, "h1", "h2")
	dest := env.host("h2").DockAddr()
	if err := env.host("h1").Launch("w", &hopper{Docks: []string{dest}}); err != nil {
		t.Fatal(err)
	}
	exit, err := env.host("h1").WaitLocal(context.Background(), "w")
	if err != nil {
		// The agent may already have left; that's a test race, not a bug.
		t.Skipf("agent already departed: %v", err)
	}
	if exit.Status != StatusMigrating || exit.Dest != dest {
		t.Fatalf("exit = %+v", exit)
	}
	env.awaitGone(t, "w")
}

func TestDuplicateLaunchRejected(t *testing.T) {
	env := newEnv(t, "h1")
	if err := env.host("h1").Launch("dup", sleeper{}); err != nil {
		t.Fatal(err)
	}
	if err := env.host("h1").Launch("dup", sleeper{}); err == nil {
		t.Fatal("duplicate launch accepted")
	}
}

func TestFailedAgentDeregisters(t *testing.T) {
	env := newEnv(t, "h1")
	if err := env.host("h1").Launch("f", failer{}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "f")
}

func TestMigrationFailureReArrivesLocally(t *testing.T) {
	env := newEnv(t, "h1")
	if err := env.host("h1").Launch("bad", &badHopper{}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "bad")
	got := visits("bad")
	// Ran once, failed to migrate, re-entered locally, terminated.
	if len(got) != 2 || got[0] != "h1" || got[1] != "h1" {
		t.Fatalf("visits = %v", got)
	}
}

func TestKill(t *testing.T) {
	env := newEnv(t, "h1")
	if err := env.host("h1").Launch("sl", sleeper{}); err != nil {
		t.Fatal(err)
	}
	if err := env.host("h1").Kill("sl"); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "sl")
	if err := env.host("h1").Kill("sl"); err == nil {
		t.Fatal("kill of absent agent succeeded")
	}
}

// recorderHook checks hook plumbing: the blob produced on departure arrives
// intact at the destination.
type recorderHook struct {
	name string
	mu   sync.Mutex
	log  []string
}

func (r *recorderHook) HookName() string { return r.name }

func (r *recorderHook) PreDepart(agentID string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, "depart:"+agentID)
	return []byte("state-of-" + agentID), nil
}

func (r *recorderHook) PostArrive(agentID string, blob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, fmt.Sprintf("arrive:%s:%s", agentID, blob))
	return nil
}

func (r *recorderHook) OnTerminate(agentID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, "terminate:"+agentID)
}

func (r *recorderHook) entries() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

func TestHooksRunAroundMigration(t *testing.T) {
	env := newEnv(t, "h1", "h2")
	hook := &recorderHook{name: "rec"}
	env.host("h1").AddHook(hook)
	env.host("h2").AddHook(hook) // same recorder on both hosts

	if err := env.host("h1").Launch("hk", &hopper{Docks: []string{env.host("h2").DockAddr()}}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "hk")
	got := hook.entries()
	want := []string{"depart:hk", "arrive:hk:state-of-hk", "terminate:hk"}
	if len(got) != len(want) {
		t.Fatalf("hook log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hook log = %v, want %v", got, want)
		}
	}
}

// blockingHook fails PreDepart, forcing local re-arrival.
type blockingHook struct {
	recorderHook
	failDepart bool
}

func (b *blockingHook) PreDepart(agentID string) ([]byte, error) {
	if b.failDepart {
		b.failDepart = false
		return nil, errors.New("injected depart failure")
	}
	return b.recorderHook.PreDepart(agentID)
}

func TestHookDepartFailureKeepsAgentRunning(t *testing.T) {
	env := newEnv(t, "h1", "h2")
	hook := &blockingHook{recorderHook: recorderHook{name: "blk"}, failDepart: true}
	env.host("h1").AddHook(hook)

	// The hopper will try to migrate; the first PreDepart fails, the agent
	// re-runs locally and tries again, which succeeds. The itinerary is
	// consumed before PreDepart runs, so Run retries with an empty
	// itinerary and terminates on h1.
	if err := env.host("h1").Launch("hb", &hopper{Docks: []string{env.host("h2").DockAddr()}}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "hb")
	got := visits("hb")
	if len(got) < 2 {
		t.Fatalf("visits = %v, want at least 2 local runs", got)
	}
}

func TestExtensions(t *testing.T) {
	env := newEnv(t, "h1")
	type svc struct{ n int }
	env.host("h1").SetExtension("x", &svc{n: 7})
	got, ok := env.host("h1").Extension("x").(*svc)
	if !ok || got.n != 7 {
		t.Fatalf("extension = %v", env.host("h1").Extension("x"))
	}
	if env.host("h1").Extension("missing") != nil {
		t.Fatal("missing extension non-nil")
	}
}

func TestHostCloseStopsAgents(t *testing.T) {
	env := newEnv(t, "h1")
	h := env.host("h1")
	if err := h.Launch("s1", sleeper{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		h.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; agent goroutine leaked")
	}
	if err := h.Launch("s2", sleeper{}); err == nil {
		t.Fatal("launch on closed host accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	guard, _ := security.NewGuard(security.NewStore())
	svc := naming.NewService()
	cases := []Config{
		{},
		{Name: "h", Registry: NewRegistry(), Guard: guard},                         // no directory
		{Name: "h", Directory: naming.Local{Svc: svc}, Guard: guard},               // no registry
		{Name: "h", Directory: naming.Local{Svc: svc}, Registry: NewRegistry()},    // no guard
		{Directory: naming.Local{Svc: svc}, Registry: NewRegistry(), Guard: guard}, // no name
	}
	for i, cfg := range cases {
		if _, err := NewHost(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestResidents(t *testing.T) {
	env := newEnv(t, "h1")
	env.host("h1").Launch("r1", sleeper{})
	env.host("h1").Launch("r2", sleeper{})
	res := env.host("h1").Residents()
	if len(res) != 2 {
		t.Fatalf("residents = %v", res)
	}
}

func TestConcurrentMigrationsBetweenHosts(t *testing.T) {
	env := newEnv(t, "h1", "h2")
	d1, d2 := env.host("h1").DockAddr(), env.host("h2").DockAddr()
	const n = 16
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("swarm-%d", i)
		// Each agent ping-pongs h1 -> h2 -> h1 -> h2 then exits.
		if err := env.host("h1").Launch(id, &hopper{Docks: []string{d2, d1, d2}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env.awaitGone(t, fmt.Sprintf("swarm-%d", i))
	}
	for i := 0; i < n; i++ {
		got := visits(fmt.Sprintf("swarm-%d", i))
		if len(got) != 4 {
			t.Fatalf("agent %d visits = %v", i, got)
		}
	}
}

// contextProbe checks every Context accessor from inside a behaviour.
type contextProbe struct{}

func (contextProbe) Run(ctx *Context) error {
	recordVisit(ctx.AgentID(), ctx.HostName())
	if ctx.StdContext() == nil || ctx.StdContext().Err() != nil {
		return errBoom
	}
	var zero [32]byte
	if ctx.Credential() == zero {
		return errBoom
	}
	if ctx.Host() == nil {
		return errBoom
	}
	if ctx.Extension("probe-svc") == nil {
		return errBoom
	}
	ctx.Logf("probe on %s epoch %d", ctx.HostName(), ctx.Epoch())
	return nil
}

func TestContextAccessors(t *testing.T) {
	env := newEnv(t, "h1")
	env.registry.Register("test.contextProbe", contextProbe{})
	env.host("h1").SetExtension("probe-svc", struct{}{})
	if err := env.host("h1").Launch("probe", contextProbe{}); err != nil {
		t.Fatal(err)
	}
	env.awaitGone(t, "probe")
	if got := visits("probe"); len(got) != 1 {
		t.Fatalf("probe never ran: %v", got)
	}
}

// regProbe is a dedicated type so registry tests do not collide with the
// process-global gob registrations of the other test behaviours.
type regProbe struct{ sleeper }

func TestRegistryRegistered(t *testing.T) {
	r := NewRegistry()
	if r.Registered("test.regProbe") {
		t.Fatal("empty registry claims registration")
	}
	r.Register("test.regProbe", regProbe{})
	if !r.Registered("test.regProbe") {
		t.Fatal("registration not recorded")
	}
	r.Register("test.regProbe", regProbe{}) // same name: no-op
	// Same type under another name must not panic (gob keeps the first).
	r.Register("test.regProbe.alias", regProbe{})
	if !r.Registered("test.regProbe.alias") {
		t.Fatal("alias registration not recorded")
	}
}

func TestStatusStrings(t *testing.T) {
	names := map[Status]string{
		StatusRunning: "running", StatusMigrating: "migrating",
		StatusDone: "done", StatusFailed: "failed",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
	if Status(99).String() == "" {
		t.Error("unknown status has empty name")
	}
}

func TestAgentStatusAndAccessors(t *testing.T) {
	env := newEnv(t, "h1")
	h := env.host("h1")
	if h.Guard() == nil || h.Directory() == nil {
		t.Fatal("accessors returned nil")
	}
	if _, ok := h.AgentStatus("nobody"); ok {
		t.Fatal("status for absent agent")
	}
	if err := h.Launch("st", sleeper{}); err != nil {
		t.Fatal(err)
	}
	if st, ok := h.AgentStatus("st"); !ok || st != StatusRunning {
		t.Fatalf("status = %v, %v", st, ok)
	}
	h.Kill("st")
	env.awaitGone(t, "st")
}
