package agent

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"naplet/internal/journal"
	"naplet/internal/naming"
)

// This file is the agent runtime's half of crash recovery: resident
// agents are checkpointed into the write-ahead journal (behaviour state
// plus epoch), and Recover rebuilds them after a restart — re-registering
// each agent with the location service and re-entering its behaviour.

// ConnCheckpointer contributes connection-state records to an agent
// checkpoint batch. The NapletSocket controller implements it; hooks that
// do are discovered by type assertion. Batching the behaviour's progress
// and its connections' send cursors into one atomic journal append is
// what preserves exactly-once delivery across a crash: with separate
// writes, a crash between them either replays a sent message or skips an
// unsent one, whichever order is chosen.
type ConnCheckpointer interface {
	CheckpointRecords(agentID string) []journal.Record
}

// agentState is the journaled form of one resident agent.
type agentState struct {
	Epoch uint64
	// Behavior carries the gob-encoded behaviour value, exactly as a
	// migration bundle would ship it.
	Behavior Behavior
}

// checkpointAgent journals the agent's behaviour state atomically with
// its connections' states (one batch, one write).
func (h *Host) checkpointAgent(agentID string, b Behavior, epoch uint64) error {
	j := h.cfg.Journal
	if j == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&agentState{Epoch: epoch, Behavior: b}); err != nil {
		return fmt.Errorf("agent: encoding checkpoint of %q: %w", agentID, err)
	}
	recs := []journal.Record{{Kind: journal.KindAgent, Key: agentID, Data: buf.Bytes()}}
	h.mu.Lock()
	hooks := append([]Hook(nil), h.hooks...)
	h.mu.Unlock()
	for _, hook := range hooks {
		if cp, ok := hook.(ConnCheckpointer); ok {
			recs = append(recs, cp.CheckpointRecords(agentID)...)
		}
	}
	if err := j.Append(recs...); err != nil && !errors.Is(err, journal.ErrClosed) {
		return fmt.Errorf("agent: journaling checkpoint of %q: %w", agentID, err)
	}
	h.checkpoints.Inc()
	return nil
}

// dropAgentJournal removes an agent's journal record — the agent has left
// this host for good (terminated, failed, or migrated away).
func (h *Host) dropAgentJournal(agentID string) {
	if j := h.cfg.Journal; j != nil {
		j.Delete(journal.KindAgent, agentID)
	}
}

// Recover restarts every journaled agent after a process restart. For
// each one it re-claims the agent's location service entry — advancing
// the epoch past the pre-crash registration, or re-registering when the
// entry already expired by TTL — re-checkpoints under the new epoch, and
// re-enters the behaviour from its last checkpoint. Call it after the
// connection layer has rebuilt its own state (Controller.RecoverConns),
// so resumes arriving from peers find their connections. It returns the
// number of agents recovered.
func (h *Host) Recover() (int, error) {
	j := h.cfg.Journal
	if j == nil {
		return 0, nil
	}
	recovered := 0
	for agentID, data := range j.Entries(journal.KindAgent) {
		var st agentState
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
			h.log.Warnf("recover: undecodable checkpoint of %q: %v", agentID, err)
			continue
		}
		h.mu.Lock()
		_, resident := h.agents[agentID]
		h.mu.Unlock()
		if resident || st.Behavior == nil {
			continue
		}

		epoch, err := h.reclaimLocation(agentID, st.Epoch)
		if err != nil {
			h.log.Warnf("recover: re-registering %q: %v", agentID, err)
			continue
		}
		h.noteLocationEpoch(agentID, epoch)
		if err := h.checkpointAgent(agentID, st.Behavior, epoch); err != nil {
			h.log.Warnf("recover: %v", err)
		}
		h.log.Infof("agent %s recovered from journal (epoch %d)", agentID, epoch)
		h.recoveries.Inc()
		recovered++
		h.startAgent(agentID, st.Behavior, epoch)
	}
	return recovered, nil
}

// reclaimLocation points the location service back at this host after a
// restart and returns the epoch the agent now runs under. A live entry
// (ours, pre-crash) is advanced by a normal epoch update; an entry the
// TTL already expired is re-registered, which continues its epoch
// sequence so pre-crash stragglers stay stale.
func (h *Host) reclaimLocation(agentID string, journaled uint64) (uint64, error) {
	ctx, cancel := context.WithTimeout(h.rootCtx, 10*time.Second)
	defer cancel()
	rec, err := h.cfg.Directory.Lookup(ctx, agentID)
	if err == nil {
		epoch := rec.Epoch + 1
		if uerr := h.cfg.Directory.Update(ctx, agentID, h.Location(), epoch); uerr != nil {
			return 0, uerr
		}
		return epoch, nil
	}
	if !errors.Is(err, naming.ErrNotFound) {
		return 0, err
	}
	if rerr := h.cfg.Directory.Register(ctx, agentID, h.Location()); rerr != nil {
		return 0, rerr
	}
	// Register picks the next epoch itself when it supersedes an expired
	// entry; read it back rather than guessing.
	if rec, lerr := h.cfg.Directory.Lookup(ctx, agentID); lerr == nil {
		return rec.Epoch, nil
	}
	return journaled, nil
}
