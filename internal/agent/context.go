package agent

import (
	"context"

	"naplet/internal/security"
)

// Context is the execution environment a behaviour sees on one host. A
// fresh Context is built for every hop; values that must survive a hop
// belong in the behaviour's own (gob-encoded) state.
type Context struct {
	host    *Host
	agentID string
	epoch   uint64
	cred    [security.CredentialSize]byte
	// behavior is the running behaviour value, referenced so Checkpoint can
	// journal its current state.
	behavior Behavior

	// migrateDest holds the destination dock address after MigrateTo.
	migrateDest string

	// ctx is cancelled when the host shuts down or the agent is killed.
	ctx context.Context
}

// AgentID returns the agent's globally unique id.
func (c *Context) AgentID() string { return c.agentID }

// HostName returns the name of the host the agent currently resides on.
func (c *Context) HostName() string { return c.host.Name() }

// Epoch returns the agent's hop count: 1 on the launch host, incremented by
// each migration. It doubles as the location-service epoch.
func (c *Context) Epoch() uint64 { return c.epoch }

// Credential returns the security credential this host issued to the agent;
// it accompanies every proxy request to the NapletSocket controller.
func (c *Context) Credential() [security.CredentialSize]byte { return c.cred }

// Done returns a channel closed when the agent must stop (host shutdown or
// kill). Long-running behaviours should select on it.
func (c *Context) Done() <-chan struct{} { return c.ctx.Done() }

// StdContext returns the agent's lifetime as a context.Context, for passing
// to APIs that take one.
func (c *Context) StdContext() context.Context { return c.ctx }

// Logf logs a message tagged with the agent and host.
func (c *Context) Logf(format string, args ...any) {
	if c.host.cfg.Logf != nil {
		c.host.cfg.Logf("[%s@%s] "+format, append([]any{c.agentID, c.host.Name()}, args...)...)
	}
}

// MigrateTo requests migration to the host whose docking address is
// destDock. It returns ErrMigrate, which Run must propagate:
//
//	return ctx.MigrateTo(next)
//
// The runtime then suspends the agent's connections, ships the behaviour,
// and re-enters Run on the destination.
func (c *Context) MigrateTo(destDock string) error {
	c.migrateDest = destDock
	return ErrMigrate
}

// Checkpoint journals the behaviour's current state atomically with the
// agent's connection state (one journal batch), when the host runs a
// journal; without one it is a no-op. A behaviour should call it after
// each unit of externally visible progress — e.g. once per message sent —
// so a crash-restarted run resumes from the last unit instead of
// repeating or skipping it.
func (c *Context) Checkpoint() error {
	return c.host.checkpointAgent(c.agentID, c.behavior, c.epoch)
}

// Extension returns the host service registered under name (for example
// the NapletSocket controller), or nil. Typed accessors live in the public
// naplet package.
func (c *Context) Extension(name string) any { return c.host.Extension(name) }

// Host returns the host the agent resides on. It is exposed for the
// middleware layers (controller proxy); behaviours should not need it.
func (c *Context) Host() *Host { return c.host }
