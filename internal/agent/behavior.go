// Package agent implements the Naplet-like mobile agent middleware that
// NapletSocket lives in: agent servers (hosts), the docking system that
// transfers agents between hosts, agent lifecycle management, and the
// migration hooks that let the connection layer suspend and resume an
// agent's connections around each hop.
//
// Mobility is weak mobility, as in Naplet and most Java mobile-agent
// systems: an agent is a registered behaviour type plus its serializable
// state. Migration checkpoints the behaviour value with encoding/gob, ships
// it to the destination host's dock, and re-enters Run there. Behaviours
// resume from explicit state they carry (a phase counter, remaining
// itinerary, etc.) rather than from a captured stack.
package agent

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Behavior is the mobile code of an agent. Run is invoked once per visited
// host; it should return ErrMigrate (via Context.MigrateTo) to hop, nil to
// terminate the agent, or any other error to fail it.
//
// Concrete Behavior types must be registered with a Registry (which also
// registers them with gob) and must be gob-encodable: exported fields only
// carry state across hops.
type Behavior interface {
	Run(ctx *Context) error
}

// ErrMigrate is the sentinel returned by Context.MigrateTo; Run must
// propagate it so the runtime performs the hop.
var ErrMigrate = errors.New("agent: migration requested")

// Registry maps behaviour implementations so that hosts can decode arriving
// bundles. All hosts that exchange agents must register the same types.
type Registry struct {
	mu    sync.Mutex
	types map[string]bool
}

// NewRegistry returns an empty behaviour registry.
func NewRegistry() *Registry {
	return &Registry{types: make(map[string]bool)}
}

// Register records a behaviour prototype and registers its concrete type
// with gob. Registering the same name twice is a no-op; registering a type
// that gob already knows under another name keeps the first name (gob
// requires one stable name per concrete type) instead of panicking.
func (r *Registry) Register(name string, proto Behavior) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.types[name] {
		return
	}
	r.types[name] = true
	func() {
		defer func() {
			// gob.RegisterName panics on duplicate registrations of the
			// same concrete type; the type stays encodable under its first
			// name, so tolerate it.
			recover()
		}()
		gob.RegisterName(name, proto)
	}()
}

// Registered reports whether name has been registered.
func (r *Registry) Registered(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.types[name]
}

// Status is an agent's lifecycle state on a host.
type Status uint8

// Agent lifecycle states.
const (
	// StatusRunning means the behaviour goroutine is executing Run.
	StatusRunning Status = iota + 1
	// StatusMigrating means the agent is being transferred to another host.
	StatusMigrating
	// StatusDone means Run returned nil and the agent terminated normally.
	StatusDone
	// StatusFailed means Run returned a non-migration error.
	StatusFailed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusMigrating:
		return "migrating"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}
