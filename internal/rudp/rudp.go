// Package rudp implements the reliable request/response control channel of
// NapletSocket (Section 3.5 of the paper): control messages travel over UDP
// for low latency, with retransmission timers, acknowledgements, and
// duplicate suppression layered on top to mask omission failures and
// reordering. Sequence (request) identifiers relate each reply to its
// request.
//
// The receiver invokes the registered handler exactly once per request id
// and caches the response, so a retransmitted request is answered from the
// cache rather than re-executed — giving exactly-once handler semantics with
// at-least-once delivery underneath.
package rudp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

const (
	packetMagic   = 0x4e55 // "NU"
	packetVersion = 1

	kindRequest  = 1
	kindResponse = 2

	headerSize = 2 + 1 + 1 + 8

	// MaxPayload bounds a control payload to stay far below typical UDP MTU
	// trouble; loopback allows much more, but control messages are small.
	MaxPayload = 32 << 10
)

// Errors returned by the endpoint.
var (
	// ErrTimeout reports that a request exhausted its retransmissions
	// without receiving a response.
	ErrTimeout = errors.New("rudp: request timed out")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("rudp: endpoint closed")
	// ErrPeerUnreachable reports that a request exhausted its retry budget
	// without any response from the peer — the typed signal the failure
	// detector and recovery paths act on. Errors carrying it also match
	// ErrTimeout, so existing timeout handling keeps working.
	ErrPeerUnreachable = errors.New("rudp: peer unreachable")
)

// UnreachableError is the concrete error for an exhausted retry budget.
type UnreachableError struct {
	// Peer is the unresponsive remote address.
	Peer string
	// Retries is how many retransmissions were attempted.
	Retries int
	// Elapsed is how long the request tried overall.
	Elapsed time.Duration
}

// Error implements error.
func (e *UnreachableError) Error() string {
	return fmt.Sprintf("rudp: peer %s unreachable after %d retries over %v", e.Peer, e.Retries, e.Elapsed.Round(time.Millisecond))
}

// Is matches both ErrPeerUnreachable and ErrTimeout.
func (e *UnreachableError) Is(target error) bool {
	return target == ErrPeerUnreachable || target == ErrTimeout
}

// Handler processes one control request and returns the response payload.
// It is invoked at most once per request id even if the request is
// retransmitted. Handlers run on their own goroutines and must be safe for
// concurrent use.
type Handler func(from *net.UDPAddr, req []byte) (resp []byte)

// Config tunes an endpoint. The zero value selects the defaults.
type Config struct {
	// RetransmitInterval is the initial gap between retransmissions of an
	// unacknowledged request; it doubles after every retry, capped at
	// BackoffCap. Default 20ms.
	RetransmitInterval time.Duration
	// BackoffCap caps the retransmission interval as it doubles.
	// Default 8x RetransmitInterval.
	BackoffCap time.Duration
	// Jitter is the fraction (0..1) by which each retransmission gap is
	// randomly perturbed, so retries from many connections decorrelate
	// instead of arriving in synchronized bursts. Default 0.1; negative
	// disables jitter.
	Jitter float64
	// MaxRetries is the retry budget: how many retransmissions are
	// attempted before the request fails with an UnreachableError
	// (matching ErrPeerUnreachable and ErrTimeout). Default 10.
	MaxRetries int
	// ResponseCacheTTL is how long a computed response is retained to answer
	// duplicate requests. Default 30s.
	ResponseCacheTTL time.Duration
	// DropFn, when non-nil, is consulted for every outgoing packet; a true
	// return discards the packet instead of sending it. It exists for
	// fault-injection tests and is never set in production.
	DropFn func(payload []byte) bool
	// SendDelay, when positive, delays every outgoing packet — network
	// emulation for the latency experiments.
	SendDelay time.Duration
	// ActivityFn, when non-nil, is invoked with the source address of
	// every structurally valid incoming packet. The failure detector
	// piggybacks on it: any control traffic from a peer is evidence of
	// life, suppressing explicit heartbeat probes.
	ActivityFn func(from *net.UDPAddr)

	// rng is a test seam for the jitter source; nil means math/rand.
	rng func() float64
}

func (c Config) withDefaults() Config {
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 20 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 8 * c.RetransmitInterval
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.ResponseCacheTTL <= 0 {
		c.ResponseCacheTTL = 30 * time.Second
	}
	if c.rng == nil {
		c.rng = rand.Float64
	}
	return c
}

// Stats exposes endpoint counters, mainly for benchmarks and tests.
type Stats struct {
	RequestsSent      uint64
	Retransmits       uint64
	ResponsesServed   uint64
	DuplicateRequests uint64
	HandlerInvoked    uint64
	PacketsDropped    uint64
}

// Endpoint is one end of the control channel: it issues reliable requests
// to remote endpoints and serves requests arriving from them.
type Endpoint struct {
	conn    *net.UDPConn
	handler Handler
	cfg     Config
	clk     clock

	mu      sync.Mutex
	pending map[uint64]chan []byte
	cache   map[cacheKey]*cacheEntry
	nextID  uint64
	closed  bool

	stats struct {
		requestsSent      atomic.Uint64
		retransmits       atomic.Uint64
		responsesServed   atomic.Uint64
		duplicateRequests atomic.Uint64
		handlerInvoked    atomic.Uint64
		packetsDropped    atomic.Uint64
	}

	done chan struct{}
	wg   sync.WaitGroup
}

type cacheKey struct {
	addr string
	id   uint64
}

type cacheEntry struct {
	// done is closed once resp is valid.
	done chan struct{}
	resp []byte
	when time.Time
}

// Listen opens an endpoint on the given UDP address ("" or ":0" for an
// ephemeral port) and starts serving. The handler may be nil for a
// client-only endpoint.
func Listen(addr string, h Handler, cfg Config) (*Endpoint, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rudp: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("rudp: listening on %q: %w", addr, err)
	}
	e := &Endpoint{
		conn:    conn,
		handler: h,
		cfg:     cfg.withDefaults(),
		clk:     realClock{},
		pending: make(map[uint64]chan []byte),
		cache:   make(map[cacheKey]*cacheEntry),
		nextID:  rand.Uint64() | 1,
		done:    make(chan struct{}),
	}
	e.wg.Add(2)
	go e.readLoop()
	go e.janitor()
	return e, nil
}

// Addr returns the endpoint's bound UDP address.
func (e *Endpoint) Addr() *net.UDPAddr { return e.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		RequestsSent:      e.stats.requestsSent.Load(),
		Retransmits:       e.stats.retransmits.Load(),
		ResponsesServed:   e.stats.responsesServed.Load(),
		DuplicateRequests: e.stats.duplicateRequests.Load(),
		HandlerInvoked:    e.stats.handlerInvoked.Load(),
		PacketsDropped:    e.stats.packetsDropped.Load(),
	}
}

// Close shuts the endpoint down and releases the socket.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

// Request sends payload to raddr and waits for the peer's response,
// retransmitting as needed. It fails with ErrTimeout after the configured
// retries, or earlier if ctx is done.
func (e *Endpoint) Request(ctx context.Context, raddr string, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("rudp: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	dst, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("rudp: resolving %q: %w", raddr, err)
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	id := e.nextID
	e.nextID += 2
	ch := make(chan []byte, 1)
	e.pending[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	pkt := encodePacket(kindRequest, id, payload)
	start := e.clk.Now()
	if err := e.send(dst, pkt); err != nil {
		return nil, err
	}
	e.stats.requestsSent.Add(1)

	interval := e.cfg.RetransmitInterval
	timer := e.clk.NewTimer(e.jittered(interval))
	defer timer.Stop()
	for attempt := 0; ; {
		select {
		case resp := <-ch:
			return resp, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-e.done:
			return nil, ErrClosed
		case <-timer.C():
			attempt++
			if attempt > e.cfg.MaxRetries {
				return nil, &UnreachableError{Peer: raddr, Retries: e.cfg.MaxRetries, Elapsed: e.clk.Now().Sub(start)}
			}
			if err := e.send(dst, pkt); err != nil {
				return nil, err
			}
			e.stats.retransmits.Add(1)
			if interval < e.cfg.BackoffCap {
				interval *= 2
				if interval > e.cfg.BackoffCap {
					interval = e.cfg.BackoffCap
				}
			}
			timer.Reset(e.jittered(interval))
		}
	}
}

// jittered perturbs d by ±Jitter/2 of itself.
func (e *Endpoint) jittered(d time.Duration) time.Duration {
	if e.cfg.Jitter <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + e.cfg.Jitter*(e.cfg.rng()-0.5)))
}

func (e *Endpoint) send(dst *net.UDPAddr, pkt []byte) error {
	if e.cfg.DropFn != nil && e.cfg.DropFn(pkt) {
		e.stats.packetsDropped.Add(1)
		return nil
	}
	if e.cfg.SendDelay > 0 {
		// Emulated one-way latency: deliver asynchronously after the delay.
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		time.AfterFunc(e.cfg.SendDelay, func() {
			e.conn.WriteToUDP(cp, dst)
		})
		return nil
	}
	_, err := e.conn.WriteToUDP(pkt, dst)
	if err != nil {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return ErrClosed
		}
	}
	return err
}

func encodePacket(kind byte, id uint64, payload []byte) []byte {
	pkt := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint16(pkt[0:2], packetMagic)
	pkt[2] = packetVersion
	pkt[3] = kind
	binary.BigEndian.PutUint64(pkt[4:12], id)
	copy(pkt[headerSize:], payload)
	return pkt
}

func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, MaxPayload+headerSize)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			// Transient errors (e.g. ICMP port unreachable surfacing as a
			// read error on some platforms) must not kill the loop.
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if n < headerSize {
			continue
		}
		if binary.BigEndian.Uint16(buf[0:2]) != packetMagic || buf[2] != packetVersion {
			continue
		}
		kind := buf[3]
		id := binary.BigEndian.Uint64(buf[4:12])
		payload := make([]byte, n-headerSize)
		copy(payload, buf[headerSize:n])
		if e.cfg.ActivityFn != nil {
			e.cfg.ActivityFn(from)
		}
		switch kind {
		case kindRequest:
			e.handleRequest(from, id, payload)
		case kindResponse:
			e.handleResponse(id, payload)
		}
	}
}

// handleRequest serves a request, invoking the handler exactly once per
// (peer, id) and replaying the cached response for duplicates.
func (e *Endpoint) handleRequest(from *net.UDPAddr, id uint64, payload []byte) {
	key := cacheKey{addr: from.String(), id: id}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if ent, ok := e.cache[key]; ok {
		e.mu.Unlock()
		e.stats.duplicateRequests.Add(1)
		// Re-send the response once it is (or becomes) ready; don't block
		// the read loop waiting on a slow handler.
		go func() {
			select {
			case <-ent.done:
				e.send(from, encodePacket(kindResponse, id, ent.resp))
				e.stats.responsesServed.Add(1)
			case <-e.done:
			}
		}()
		return
	}
	ent := &cacheEntry{done: make(chan struct{}), when: time.Now()}
	e.cache[key] = ent
	e.mu.Unlock()

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		var resp []byte
		if e.handler != nil {
			e.stats.handlerInvoked.Add(1)
			resp = e.handler(from, payload)
		}
		ent.resp = resp
		close(ent.done)
		e.send(from, encodePacket(kindResponse, id, resp))
		e.stats.responsesServed.Add(1)
	}()
}

func (e *Endpoint) handleResponse(id uint64, payload []byte) {
	e.mu.Lock()
	ch, ok := e.pending[id]
	if ok {
		delete(e.pending, id) // first response wins; duplicates ignored
	}
	e.mu.Unlock()
	if ok {
		ch <- payload
	}
}

// janitor evicts expired response-cache entries.
func (e *Endpoint) janitor() {
	defer e.wg.Done()
	tick := time.NewTicker(e.cfg.ResponseCacheTTL / 2)
	defer tick.Stop()
	for {
		select {
		case <-e.done:
			return
		case now := <-tick.C:
			e.mu.Lock()
			for k, ent := range e.cache {
				select {
				case <-ent.done:
					if now.Sub(ent.when) > e.cfg.ResponseCacheTTL {
						delete(e.cache, k)
					}
				default:
					// Handler still running; keep the entry.
				}
			}
			e.mu.Unlock()
		}
	}
}
