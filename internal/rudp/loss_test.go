package rudp

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRequestsSurviveRandomLoss drives many requests through endpoints that
// randomly drop 30% of their outgoing packets in both directions: with
// retransmission every request must still complete, and the handler must
// run exactly once per request.
func TestRequestsSurviveRandomLoss(t *testing.T) {
	var handled sync.Map // request body -> invocation count
	h := func(_ *net.UDPAddr, req []byte) []byte {
		key := string(req)
		v, _ := handled.LoadOrStore(key, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
		return append([]byte("ok:"), req...)
	}
	lossy := func(seed int64) func([]byte) bool {
		rng := rand.New(rand.NewSource(seed))
		var mu sync.Mutex
		return func([]byte) bool {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64() < 0.30
		}
	}
	server, err := Listen("127.0.0.1:0", h, Config{
		RetransmitInterval: 3 * time.Millisecond,
		MaxRetries:         40,
		DropFn:             lossy(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0", nil, Config{
		RetransmitInterval: 3 * time.Millisecond,
		MaxRetries:         40,
		DropFn:             lossy(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const requests = 60
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("req-%d", i)
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			resp, err := client.Request(ctx, server.Addr().String(), []byte(body))
			if err != nil {
				errs <- fmt.Errorf("%s: %w", body, err)
				return
			}
			if string(resp) != "ok:"+body {
				errs <- fmt.Errorf("%s: resp %q", body, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Exactly-once despite duplicate deliveries.
	for i := 0; i < requests; i++ {
		key := fmt.Sprintf("req-%d", i)
		v, ok := handled.Load(key)
		if !ok {
			t.Fatalf("%s never handled", key)
		}
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Fatalf("%s handled %d times", key, n)
		}
	}
	// And loss actually happened (the test exercised retransmission).
	if s := client.Stats(); s.Retransmits == 0 {
		t.Error("no retransmissions — loss injection ineffective")
	}
}
