package rudp

import (
	"sort"
	"sync"
	"time"
)

// clock abstracts time for the retransmission schedule so tests can step
// it deterministically. The production endpoint uses the system clock.
type clock interface {
	Now() time.Time
	NewTimer(d time.Duration) timer
}

// timer is the subset of *time.Timer the request loop needs.
type timer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop() bool
}

type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) timer { return &realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t *realTimer) C() <-chan time.Time   { return t.t.C }
func (t *realTimer) Reset(d time.Duration) { t.t.Reset(d) }
func (t *realTimer) Stop() bool            { return t.t.Stop() }

// fakeClock is a manually advanced clock for schedule tests.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

func newFakeClock(start time.Time) *fakeClock { return &fakeClock{now: start} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTimer(d time.Duration) timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clk: c, ch: make(chan time.Time, 1), when: c.now.Add(d), armed: true}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward, firing due timers in order.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	due := make([]*fakeTimer, 0, len(c.timers))
	for _, t := range c.timers {
		if t.armed && !t.when.After(now) {
			t.armed = false
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	c.mu.Unlock()
	for _, t := range due {
		select {
		case t.ch <- now:
		default:
		}
	}
}

type fakeTimer struct {
	clk   *fakeClock
	ch    chan time.Time
	when  time.Time
	armed bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Reset(d time.Duration) {
	t.clk.mu.Lock()
	t.when = t.clk.now.Add(d)
	t.armed = true
	t.clk.mu.Unlock()
}

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	was := t.armed
	t.armed = false
	t.clk.mu.Unlock()
	return was
}
