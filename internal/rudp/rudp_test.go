package rudp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newPair(t *testing.T, h Handler, cfg Config) (client, server *Endpoint) {
	t.Helper()
	server, err := Listen("127.0.0.1:0", h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	client, err = Listen("127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, server
}

func TestRequestResponse(t *testing.T) {
	echo := func(_ *net.UDPAddr, req []byte) []byte { return append([]byte("echo:"), req...) }
	client, server := newPair(t, echo, Config{})
	resp, err := client.Request(context.Background(), server.Addr().String(), []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := func(_ *net.UDPAddr, req []byte) []byte { return req }
	client, server := newPair(t, h, Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte(fmt.Sprintf("msg-%d", i))
			got, err := client.Request(context.Background(), server.Addr().String(), want)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("got %q want %q", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	var reqCount atomic.Int64
	h := func(_ *net.UDPAddr, req []byte) []byte {
		reqCount.Add(1)
		return []byte("ok")
	}
	// Drop the first 3 outgoing packets from the client (the request and two
	// retransmits); the 4th attempt gets through.
	var drops atomic.Int64
	cfg := Config{
		RetransmitInterval: 5 * time.Millisecond,
		MaxRetries:         10,
		DropFn: func([]byte) bool {
			return drops.Add(1) <= 3
		},
	}
	server, err := Listen("127.0.0.1:0", h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Request(context.Background(), server.Addr().String(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ok" {
		t.Fatalf("resp = %q", resp)
	}
	if got := reqCount.Load(); got != 1 {
		t.Fatalf("handler invoked %d times, want 1", got)
	}
	if s := client.Stats(); s.Retransmits < 3 {
		t.Errorf("retransmits = %d, want >= 3", s.Retransmits)
	}
}

func TestExactlyOnceHandlerUnderDuplicateRequests(t *testing.T) {
	var invocations atomic.Int64
	h := func(_ *net.UDPAddr, req []byte) []byte {
		invocations.Add(1)
		return []byte("done")
	}
	// Drop every response from the server the first 2 times, forcing the
	// client to retransmit its request; the server must answer duplicates
	// from its cache without re-invoking the handler.
	var drops atomic.Int64
	serverCfg := Config{
		DropFn: func([]byte) bool { return drops.Add(1) <= 2 },
	}
	server, err := Listen("127.0.0.1:0", h, serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0", nil, Config{RetransmitInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Request(context.Background(), server.Addr().String(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "done" {
		t.Fatalf("resp = %q", resp)
	}
	if got := invocations.Load(); got != 1 {
		t.Fatalf("handler invoked %d times, want exactly 1", got)
	}
	if s := server.Stats(); s.DuplicateRequests == 0 {
		t.Error("expected duplicate requests to be observed")
	}
}

func TestRequestTimeout(t *testing.T) {
	client, err := Listen("127.0.0.1:0", nil, Config{
		RetransmitInterval: 2 * time.Millisecond,
		MaxRetries:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// A bound-but-unserved port: packets vanish into an endpoint with no
	// reader would still respond at UDP level; instead use an address with
	// nothing listening.
	dead, err := Listen("127.0.0.1:0", nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	_, err = client.Request(context.Background(), deadAddr, []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRequestContextCancel(t *testing.T) {
	block := make(chan struct{})
	h := func(_ *net.UDPAddr, req []byte) []byte {
		<-block
		return nil
	}
	client, server := newPair(t, h, Config{RetransmitInterval: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := client.Request(ctx, server.Addr().String(), []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	close(block)
}

func TestClosedEndpointRejectsRequests(t *testing.T) {
	e, err := Listen("127.0.0.1:0", nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Request(context.Background(), "127.0.0.1:1", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	e, err := Listen("127.0.0.1:0", nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, err = e.Request(context.Background(), "127.0.0.1:1", make([]byte, MaxPayload+1))
	if err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestGarbagePacketsIgnored(t *testing.T) {
	h := func(_ *net.UDPAddr, req []byte) []byte { return []byte("alive") }
	client, server := newPair(t, h, Config{})
	// Throw junk at the server from a raw socket.
	junkSender, err := Listen("127.0.0.1:0", nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer junkSender.Close()
	for _, junk := range [][]byte{{}, {1}, {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}, bytes.Repeat([]byte{7}, 100)} {
		junkSender.conn.WriteToUDP(junk, server.Addr())
	}
	// Server still answers real requests.
	resp, err := client.Request(context.Background(), server.Addr().String(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "alive" {
		t.Fatalf("resp = %q", resp)
	}
}
