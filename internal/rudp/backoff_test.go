package rudp

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestRetransmitScheduleFakeClock pins the retransmission schedule down
// deterministically: every outgoing packet is dropped, a fake clock is
// stepped forward, and the observed send times must follow capped
// exponential backoff before the retry budget surfaces ErrPeerUnreachable.
func TestRetransmitScheduleFakeClock(t *testing.T) {
	const (
		base       = 20 * time.Millisecond
		cap        = 160 * time.Millisecond // default 8x base
		maxRetries = 6
	)
	fc := newFakeClock(time.Unix(0, 0))
	sends := make(chan time.Duration, 32)
	cfg := Config{
		RetransmitInterval: base,
		MaxRetries:         maxRetries,
		Jitter:             -1, // disabled: the schedule must be exact
		DropFn: func([]byte) bool {
			sends <- fc.Now().Sub(time.Unix(0, 0))
			return true // blackhole: nothing ever arrives
		},
	}
	e, err := Listen("127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.clk = fc

	done := make(chan error, 1)
	go func() {
		_, err := e.Request(context.Background(), "127.0.0.1:9", []byte("probe"))
		done <- err
	}()

	// Collect the initial send plus maxRetries retransmissions, advancing
	// the fake clock in small steps so each gap is measured precisely.
	var got []time.Duration
	deadline := time.After(10 * time.Second)
	for len(got) < 1+maxRetries {
		select {
		case d := <-sends:
			got = append(got, d)
			continue
		case <-done:
			t.Fatalf("request failed after only %d sends", len(got))
		case <-deadline:
			t.Fatalf("stalled with %d sends: %v", len(got), got)
		case <-time.After(2 * time.Millisecond):
			fc.Advance(time.Millisecond)
		}
	}

	// Expected gaps: base doubling each retry, capped at 8x base.
	want := []time.Duration{20, 40, 80, 160, 160, 160}
	for i := range want {
		want[i] *= time.Millisecond
	}
	const tol = 8 * time.Millisecond
	for i := 1; i < len(got); i++ {
		gap := got[i] - got[i-1]
		if diff := gap - want[i-1]; diff < -tol || diff > tol {
			t.Errorf("gap %d = %v, want %v (±%v)", i, gap, want[i-1], tol)
		}
	}

	// One more timer fire exhausts the budget.
	var reqErr error
	deadline = time.After(10 * time.Second)
wait:
	for {
		select {
		case reqErr = <-done:
			break wait
		case <-deadline:
			t.Fatal("request never exhausted its retry budget")
		case <-time.After(2 * time.Millisecond):
			fc.Advance(cap / 4)
		}
	}
	if !errors.Is(reqErr, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", reqErr)
	}
	if !errors.Is(reqErr, ErrTimeout) {
		t.Fatalf("err = %v must keep matching ErrTimeout for old call sites", reqErr)
	}
	var ue *UnreachableError
	if !errors.As(reqErr, &ue) || ue.Retries != maxRetries {
		t.Fatalf("err = %#v, want UnreachableError with %d retries", reqErr, maxRetries)
	}
	if st := e.Stats(); st.Retransmits != maxRetries {
		t.Fatalf("Retransmits = %d, want %d", st.Retransmits, maxRetries)
	}
}

// TestJitterBounds checks the jitter perturbation stays within ±Jitter/2.
func TestJitterBounds(t *testing.T) {
	vals := []float64{0, 0.25, 0.5, 0.75, 1}
	i := 0
	e := &Endpoint{cfg: Config{Jitter: 0.5, rng: func() float64 { v := vals[i%len(vals)]; i++; return v }}}
	const d = 100 * time.Millisecond
	for range vals {
		j := e.jittered(d)
		if j < 75*time.Millisecond || j > 125*time.Millisecond {
			t.Fatalf("jittered(%v) = %v outside ±25%%", d, j)
		}
	}
	e.cfg.Jitter = 0
	if e.jittered(d) != d {
		t.Fatal("zero jitter must be exact")
	}
}

// TestActivityFn checks the piggyback hook fires for valid packets on
// both request and response paths.
func TestActivityFn(t *testing.T) {
	seen := make(chan string, 16)
	srv, err := Listen("127.0.0.1:0", func(from *net.UDPAddr, req []byte) []byte {
		return append([]byte("ok:"), req...)
	}, Config{ActivityFn: func(from *net.UDPAddr) { seen <- from.String() }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Listen("127.0.0.1:0", nil, Config{ActivityFn: func(from *net.UDPAddr) { seen <- from.String() }})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Request(ctx, srv.Addr().String(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{cli.Addr().String(): false, srv.Addr().String(): false}
	timeout := time.After(2 * time.Second)
	for {
		allSeen := true
		for _, ok := range want {
			if !ok {
				allSeen = false
			}
		}
		if allSeen {
			return
		}
		select {
		case addr := <-seen:
			if _, ok := want[addr]; ok {
				want[addr] = true
			}
		case <-timeout:
			t.Fatalf("activity not reported for all peers: %v", want)
		}
	}
}
