package naplet

// Benchmark harness: one benchmark (or benchmark family) per table and
// figure of the paper's evaluation, plus micro-benchmarks of the
// substrates. Run everything with:
//
//	go test -bench=. -benchmem
//
// The repro CLI (cmd/repro) prints the corresponding paper-style tables;
// these benchmarks put the same workloads under the Go benchmark harness
// so regressions are visible in ns/op and MB/s.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"naplet/internal/experiments"
	"naplet/internal/model"
	"naplet/internal/rudp"
	"naplet/internal/ttcp"
	"naplet/internal/wire"
)

// ---- Table 1: open/close latency ----

func BenchmarkTable1_OpenCloseTCP(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

func benchOpenClose(b *testing.B, secure bool) {
	p, err := experiments.NewBenchPair(secure)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.OpenClose(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_OpenCloseNapletInsecure(b *testing.B) { benchOpenClose(b, false) }
func BenchmarkTable1_OpenCloseNapletSecure(b *testing.B)   { benchOpenClose(b, true) }

// ---- Section 4.2 / Figure 8: suspend+resume vs close+reopen ----

func BenchmarkSec42_SuspendResume(b *testing.B) {
	p, err := experiments.NewBenchPair(true)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SuspendResume(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec42_CloseReopen(b *testing.B) {
	// The alternative the paper compares against: tearing the connection
	// down and opening a new one (here: one full secure open+close).
	benchOpenClose(b, true)
}

// ---- Figure 7: full reliable-delivery trace ----

func BenchmarkFig7_ReliableTraceRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(12, 500*time.Microsecond, []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != 12 {
			b.Fatalf("delivered %d", res.Total)
		}
	}
}

// ---- Figure 9: throughput vs message size ----

func benchThroughputNaplet(b *testing.B, msgSize int) {
	p, err := experiments.NewBenchPair(true)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	errs := make(chan error, 1)
	total := int64(b.N) * int64(msgSize)
	go func() {
		_, err := ttcp.Receive(p.Server, 64<<10, total)
		errs <- err
	}()
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	if _, err := ttcp.Send(p.Client, msgSize, total); err != nil {
		b.Fatal(err)
	}
	if err := <-errs; err != nil {
		b.Fatal(err)
	}
}

func benchThroughputTCP(b *testing.B, msgSize int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	sender, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer sender.Close()
	sink := <-acc
	defer sink.Close()
	errs := make(chan error, 1)
	total := int64(b.N) * int64(msgSize)
	go func() {
		_, err := ttcp.Receive(sink, 64<<10, total)
		errs <- err
	}()
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	if _, err := ttcp.Send(sender, msgSize, total); err != nil {
		b.Fatal(err)
	}
	if err := <-errs; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig9_Throughput(b *testing.B) {
	for _, size := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("tcp/%dB", size), func(b *testing.B) { benchThroughputTCP(b, size) })
		b.Run(fmt.Sprintf("naplet/%dB", size), func(b *testing.B) { benchThroughputNaplet(b, size) })
	}
}

// ---- Figure 10: connection migration under load ----

func BenchmarkFig10_ConnectionMigration(b *testing.B) {
	p, err := experiments.NewBenchPair(true)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MigrateClient(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 12: the Section 5 simulation ----

func BenchmarkFig12_Simulation(b *testing.B) {
	cfg := model.SimConfig{
		Params:       model.PaperParams(),
		MeanServiceA: 500,
		MeanServiceB: 500,
		Migrations:   5000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		model.Simulate(cfg)
	}
}

// ---- Figure 13: the overhead model ----

func BenchmarkFig13_OverheadModel(b *testing.B) {
	p := model.PaperParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range []float64{1, 2, 5, 10, 20} {
			p.Overhead(float64(1+i%100), r)
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkSub_ControlChannelRoundTrip(b *testing.B) {
	server, err := rudp.Listen("127.0.0.1:0", func(_ *net.UDPAddr, req []byte) []byte { return req }, rudp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := rudp.Listen("127.0.0.1:0", nil, rudp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	payload := make([]byte, 128)
	addr := server.Addr().String()
	ctx := b.Context()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Request(ctx, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSub_FrameEncodeDecode(b *testing.B) {
	payload := make([]byte, 2048)
	buf := make([]byte, 0, 4096)
	w := &sliceWriter{buf: buf}
	b.ReportAllocs()
	b.SetBytes(2048)
	for i := 0; i < b.N; i++ {
		w.buf = w.buf[:0]
		if err := wire.WriteFrame(w, wire.Frame{Seq: uint64(i), Flags: wire.FlagData, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.ReadFrame(&sliceReader{buf: w.buf}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSub_ControlMsgCodec(b *testing.B) {
	m := &wire.ControlMsg{
		Type: wire.MsgSuspend, From: "agent-a", To: "agent-b",
		Nonce: 42, DataAddr: "127.0.0.1:9999", ControlAddr: "127.0.0.1:9998",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := m.Encode()
		if _, err := wire.DecodeControlMsg(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// sliceWriter/sliceReader avoid bytes.Buffer allocation churn in codec
// benchmarks.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}
