package naplet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"naplet/internal/core"
)

// results is a cross-host sink for behaviour outputs (test process only).
var results = struct {
	sync.Mutex
	m map[string][]string
}{m: make(map[string][]string)}

func record(key, val string) {
	results.Lock()
	results.m[key] = append(results.m[key], val)
	results.Unlock()
}

func recorded(key string) []string {
	results.Lock()
	defer results.Unlock()
	return append([]string(nil), results.m[key]...)
}

func newNet(t *testing.T, hosts []string, opts ...NetworkOption) *Network {
	t.Helper()
	opts = append(opts, WithLogf(t.Logf), WithCore(core.Config{
		OpTimeout:    2 * time.Second,
		ParkTimeout:  20 * time.Second,
		DrainTimeout: 2 * time.Second,
	}))
	nw := NewNetwork(opts...)
	t.Cleanup(func() { nw.Close() })
	registerTestBehaviors(nw)
	for _, h := range hosts {
		if _, err := nw.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func await(t *testing.T, nw *Network, agents ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, a := range agents {
		if err := nw.Await(ctx, a); err != nil {
			t.Fatalf("awaiting %s: %v", a, err)
		}
	}
}

// ---- behaviours ----

// echoServer accepts one connection and echoes messages until the peer
// closes; it never migrates.
type echoServer struct{}

func (echoServer) Run(ctx *Context) error {
	ss, err := Listen(ctx)
	if err != nil {
		return err
	}
	conn, err := ss.Accept(ctx.StdContext())
	if err != nil {
		return err
	}
	for {
		msg, err := conn.ReadMsg()
		if err != nil {
			return nil // peer closed
		}
		if err := conn.WriteMsg(msg); err != nil {
			return err
		}
	}
}

// pingClient dials the echo server, exchanges a few messages, records the
// replies, and terminates.
type pingClient struct {
	Target string
	Count  int
}

func (p *pingClient) Run(ctx *Context) error {
	conn, err := Dial(ctx, p.Target)
	if err != nil {
		return err
	}
	defer conn.Close()
	for i := 0; i < p.Count; i++ {
		msg := fmt.Sprintf("ping-%d", i)
		if err := conn.WriteMsg([]byte(msg)); err != nil {
			return err
		}
		reply, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		record(ctx.AgentID(), string(reply))
	}
	return nil
}

// roamingClient dials, sends a message per hop across an itinerary,
// re-attaching to the connection after every migration.
type roamingClient struct {
	Target string
	Docks  []string
	Conn   string // hex conn id carried across hops
	Sent   int
	Total  int
}

func (r *roamingClient) Run(ctx *Context) error {
	var conn *Socket
	var err error
	if r.Conn == "" {
		conn, err = Dial(ctx, r.Target)
		if err != nil {
			return err
		}
		r.Conn = conn.ID().String()
	} else {
		id, perr := ParseConnID(r.Conn)
		if perr != nil {
			return perr
		}
		conn, err = Attach(ctx, id)
		if err != nil {
			return err
		}
	}
	msg := fmt.Sprintf("hop%d@%s", ctx.Epoch(), ctx.HostName())
	if err := conn.WriteMsg([]byte(msg)); err != nil {
		return err
	}
	reply, err := conn.ReadMsg()
	if err != nil {
		return err
	}
	record(ctx.AgentID(), string(reply))
	r.Sent++
	if r.Sent >= r.Total || len(r.Docks) == 0 {
		return conn.Close()
	}
	next := r.Docks[0]
	r.Docks = r.Docks[1:]
	return ctx.MigrateTo(next)
}

// mailReader drains N mailbox messages, recording them, migrating once
// midway.
type mailReader struct {
	Expect int
	Moved  bool
	Dock   string
}

func (m *mailReader) Run(ctx *Context) error {
	box, err := MailboxOf(ctx)
	if err != nil {
		return err
	}
	for {
		results.Lock()
		got := len(results.m[ctx.AgentID()])
		results.Unlock()
		if got >= m.Expect {
			return nil
		}
		if !m.Moved && got >= m.Expect/2 {
			m.Moved = true
			return ctx.MigrateTo(m.Dock)
		}
		msg, err := box.Receive(ctx.StdContext())
		if err != nil {
			return err
		}
		record(ctx.AgentID(), string(msg.Body))
	}
}

// mailSender sends N messages, slowly, so some span the reader's move.
type mailSender struct {
	To    string
	Count int
}

func (m *mailSender) Run(ctx *Context) error {
	for i := 0; i < m.Count; i++ {
		if err := Send(ctx, m.To, []byte(fmt.Sprintf("mail-%d", i))); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// bouncePair is used for concurrent-migration stress: each side both sends
// and expects Count messages, migrating between rounds.
type bouncer struct {
	Peer   string
	IsDial bool
	Docks  []string
	Conn   string
	Round  int
	Rounds int
}

func (b *bouncer) Run(ctx *Context) error {
	var conn *Socket
	var err error
	switch {
	case b.Conn != "":
		id, perr := ParseConnID(b.Conn)
		if perr != nil {
			return perr
		}
		conn, err = Attach(ctx, id)
	case b.IsDial:
		conn, err = Dial(ctx, b.Peer)
	default:
		ss, lerr := Listen(ctx)
		if lerr != nil {
			return lerr
		}
		conn, err = ss.Accept(ctx.StdContext())
	}
	if err != nil {
		return err
	}
	b.Conn = conn.ID().String()

	msg := fmt.Sprintf("%s-round-%d", ctx.AgentID(), b.Round)
	if err := conn.WriteMsg([]byte(msg)); err != nil {
		return err
	}
	got, err := conn.ReadMsg()
	if err != nil {
		return err
	}
	record(ctx.AgentID(), string(got))

	b.Round++
	if b.Round >= b.Rounds {
		record(ctx.AgentID(), "done")
		return nil
	}
	next := b.Docks[(b.Round-1)%len(b.Docks)]
	return ctx.MigrateTo(next)
}

func registerTestBehaviors(nw *Network) {
	nw.Register("t.echoServer", echoServer{})
	nw.Register("t.pingClient", &pingClient{})
	nw.Register("t.roamingClient", &roamingClient{})
	nw.Register("t.mailReader", &mailReader{})
	nw.Register("t.mailSender", &mailSender{})
	nw.Register("t.bouncer", &bouncer{})
}

// ---- tests ----

func TestEndToEndPingPong(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2"})
	if err := nw.Node("h1").Launch("server", echoServer{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node("h2").Launch("client", &pingClient{Target: "server", Count: 5}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "client", "server")
	got := recorded("client")
	if len(got) != 5 {
		t.Fatalf("replies = %v", got)
	}
	for i, r := range got {
		if r != fmt.Sprintf("ping-%d", i) {
			t.Fatalf("reply %d = %q", i, r)
		}
	}
}

func TestEndToEndRoamingAgent(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2", "h3", "h4"})
	if err := nw.Node("h1").Launch("anchor", echoServer{}); err != nil {
		t.Fatal(err)
	}
	docks := []string{nw.DockOf("h3"), nw.DockOf("h4"), nw.DockOf("h2")}
	client := &roamingClient{Target: "anchor", Docks: docks, Total: 4}
	if err := nw.Node("h2").Launch("roamer", client); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "roamer", "anchor")
	got := recorded("roamer")
	if len(got) != 4 {
		t.Fatalf("echoes = %v", got)
	}
	wantHosts := []string{"h2", "h3", "h4", "h2"}
	for i, r := range got {
		want := fmt.Sprintf("hop%d@%s", i+1, wantHosts[i])
		if r != want {
			t.Fatalf("echo %d = %q, want %q", i, r, want)
		}
	}
}

func TestEndToEndConcurrentlyMigratingPair(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2", "h3", "h4"})
	docksL := []string{nw.DockOf("h3"), nw.DockOf("h1"), nw.DockOf("h3")}
	docksR := []string{nw.DockOf("h4"), nw.DockOf("h2"), nw.DockOf("h4")}
	const rounds = 4
	if err := nw.Node("h1").Launch("ying", &bouncer{Peer: "yang", Docks: docksL, Rounds: rounds}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node("h2").Launch("yang", &bouncer{Peer: "ying", IsDial: true, Docks: docksR, Rounds: rounds}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "ying", "yang")
	for _, agent := range []string{"ying", "yang"} {
		peer := map[string]string{"ying": "yang", "yang": "ying"}[agent]
		got := recorded(agent)
		if len(got) != rounds+1 || got[len(got)-1] != "done" {
			t.Fatalf("%s results = %v", agent, got)
		}
		for i := 0; i < rounds; i++ {
			want := fmt.Sprintf("%s-round-%d", peer, i)
			if got[i] != want {
				t.Fatalf("%s round %d = %q, want %q", agent, i, got[i], want)
			}
		}
	}
}

func TestEndToEndMailboxFollowsAgent(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2", "h3"}, WithPostOffices())
	const count = 12
	if err := nw.Node("h1").Launch("reader", &mailReader{Expect: count, Dock: nw.DockOf("h3")}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node("h2").Launch("writer", &mailSender{To: "reader", Count: count}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "reader", "writer")
	got := recorded("reader")
	if len(got) != count {
		t.Fatalf("mail received = %v", got)
	}
	seen := make(map[string]bool)
	for _, m := range got {
		if seen[m] {
			t.Fatalf("duplicate mail %q", m)
		}
		seen[m] = true
	}
}

func TestMigrationDelayIsApplied(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2"}, WithMigrationDelay(80*time.Millisecond))
	start := time.Now()
	if err := nw.Node("h1").Launch("lazy", &roamingClient{Target: "sink", Docks: []string{nw.DockOf("h2")}, Total: 2}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node("h2").Launch("sink", echoServer{}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "lazy")
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("migration took %v, delay not applied", elapsed)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDialWithoutControllerErrors(t *testing.T) {
	// A Context from a host without the controller extension cannot dial.
	// Simulated via a network node whose extension we can't remove easily;
	// instead check the sentinel paths.
	if !errors.Is(fmt.Errorf("wrap: %w", ErrMigrate), ErrMigrate) {
		t.Fatal("sentinel wrapping broken")
	}
}

func TestInsecureNetwork(t *testing.T) {
	nw := newNet(t, []string{"h1", "h2"}, WithInsecure())
	if err := nw.Node("h1").Launch("s2", echoServer{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node("h2").Launch("c2", &pingClient{Target: "s2", Count: 3}); err != nil {
		t.Fatal(err)
	}
	await(t, nw, "c2", "s2")
	if got := recorded("c2"); len(got) != 3 {
		t.Fatalf("replies = %v", got)
	}
}

func TestDuplicateHostNameRejected(t *testing.T) {
	nw := newNet(t, []string{"h1"})
	if _, err := nw.AddHost("h1"); err == nil {
		t.Fatal("duplicate host name accepted")
	}
	if nw.Node("h1") == nil {
		t.Fatal("original host lost")
	}
	if nw.DockOf("missing") != "" {
		t.Fatal("DockOf for unknown host returned an address")
	}
}
