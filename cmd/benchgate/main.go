// Command benchgate is the CI throughput-regression gate: it reruns the
// Figure 9 TTCP workload at the committed baseline's message sizes and
// fails when any NapletSocket/TCP throughput ratio falls more than the
// tolerance below the baseline's. Comparing ratios rather than absolute
// Mbps keeps the gate meaningful on whatever machine CI happens to run on.
//
// With -naming-baseline it instead gates the naming control plane: the
// sharded-cluster lookup benchmark is rerun and fails when the
// cached/direct speedup regresses past the tolerance or the hit rate
// under the migration storm drops below the absolute floor.
//
// With -c10k-baseline it gates connection scaling: the live connection
// storm is rerun (at a reduced population with -c10k-short) and fails
// when heap-per-connection or the wave p99 regress past the tolerance,
// or when goroutine growth across the population exceeds the O(1)
// ceiling — i.e. a per-connection goroutine crept back in.
//
// With -wan it gates WAN robustness: the netem scenario matrix is rerun
// (reduced with -wan-short) and fails when any break misses its resume,
// when a false ErrTransportLost / detector confirm / keepalive timeout
// appears on a merely-slow path, or when resume p99 blows past the
// baseline by more than the tolerance plus a fixed grace.
//
// Usage:
//
//	benchgate [-baseline BENCH_fig9.json] [-tolerance 0.5] [-total 16777216]
//	benchgate -naming-baseline BENCH_naming.json [-naming-short] [-tolerance 0.5]
//	benchgate -c10k-baseline BENCH_c10k.json [-c10k-short] [-tolerance 0.5]
//	benchgate -wan [-wan-baseline BENCH_wan.json] [-wan-short] [-tolerance 0.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"naplet/internal/experiments"
	"naplet/internal/netem"
)

var (
	baseline  = flag.String("baseline", "BENCH_fig9.json", "committed baseline file")
	tolerance = flag.Float64("tolerance", 0.5, "allowed fractional ratio drop before failing")
	total     = flag.Int64("total", 16<<20, "bytes per measurement point")
	encrypted = flag.Bool("encrypted", false, "gate the AEAD record layer: rerun Fig 9 with AES-256-GCM on and compare against the baseline's encrypted series plus the cleartext-relative floor")

	namingBaseline = flag.String("naming-baseline", "", "committed naming baseline (BENCH_naming.json); when set, gate the naming benchmark instead of Fig 9")
	namingShort    = flag.Bool("naming-short", false, "run the naming benchmark at a reduced population and window (CI smoke)")

	c10kBaseline = flag.String("c10k-baseline", "", "committed storm baseline (BENCH_c10k.json); when set, gate the connection storm instead of Fig 9")
	c10kShort    = flag.Bool("c10k-short", false, "run the storm at a reduced population (CI smoke: 10k conns, 1k wave)")

	wan         = flag.Bool("wan", false, "gate the WAN scenario matrix: rerun the chaos scenario per profile and fail on any lost resume, false ErrTransportLost, false detector confirm, false keepalive timeout, or resume-p99 blowup")
	wanBaseline = flag.String("wan-baseline", "BENCH_wan.json", "committed WAN baseline file (used with -wan)")
	wanShort    = flag.Bool("wan-short", false, "run the WAN gate on a reduced matrix (CI smoke: metro + intercontinental, 2 breaks)")
)

func namingGate() {
	b, err := experiments.LoadBenchNaming(*namingBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cfg := experiments.NamingBenchConfig{Agents: b.Agents}
	if *namingShort {
		cfg.Agents = 1000
		cfg.Duration = time.Second
	}
	res, err := experiments.RunNamingBench(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareNaming(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (naming speedup within %.0f%% of %s, hit rate above %.0f%%)\n",
		*tolerance*100, *namingBaseline, experiments.MinNamingHitRate*100)
}

func c10kGate() {
	b, err := experiments.LoadBenchC10K(*c10kBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cfg := experiments.C10KConfig{Conns: b.Conns, Wave: b.Wave}
	if *c10kShort {
		cfg.Conns = 10_000
		cfg.Wave = 1_000
	}
	res, err := experiments.RunC10K(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareC10K(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (per-conn footprint within %.0f%% of %s, goroutine growth under %d)\n",
		*tolerance*100, *c10kBaseline, experiments.MaxC10KGoroutineGrowth)
}

func wanGate() {
	b, err := experiments.LoadBenchWAN(*wanBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cfg := experiments.WANMatrixConfig{Breaks: b.Breaks}
	if *wanShort {
		cfg.Profiles = []netem.Profile{netem.ProfileMetro, netem.ProfileIntercontinental}
		cfg.Breaks = 2
	} else {
		for _, p := range b.Points {
			prof, ok := netem.ProfileNamed(p.Profile)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchgate: baseline profile %q is not in the netem matrix\n", p.Profile)
				os.Exit(1)
			}
			cfg.Profiles = append(cfg.Profiles, prof)
		}
	}
	res, err := experiments.RunWANMatrix(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareWAN(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (wan matrix: every break resumed, zero false positives, p99 within %.0f%% + %.0fms of %s)\n",
		*tolerance*100, experiments.WANP99GraceMs, *wanBaseline)
}

func main() {
	flag.Parse()
	if *wan {
		wanGate()
		return
	}
	if *namingBaseline != "" {
		namingGate()
		return
	}
	if *c10kBaseline != "" {
		c10kGate()
		return
	}
	b, err := experiments.LoadBenchFig9(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if len(b.After) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no After series to gate against\n", *baseline)
		os.Exit(1)
	}
	if *encrypted {
		if len(b.Encrypted) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s has no Encrypted series to gate against\n", *baseline)
			os.Exit(1)
		}
		sizes := make([]int, 0, len(b.Encrypted))
		for _, p := range b.Encrypted {
			sizes = append(sizes, p.MsgSize)
		}
		res, err := experiments.RunFig9Encrypted(sizes, *total)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		report, err := experiments.CompareFig9Encrypted(b, res, *tolerance)
		fmt.Print(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: ok (encrypted ratios within %.0f%% of %s and above %.0f%% of cleartext at >=%dB)\n",
			*tolerance*100, *baseline, experiments.EncryptedFloorFrac*100, experiments.EncryptedFloorMinSize)
		return
	}
	sizes := make([]int, 0, len(b.After))
	for _, p := range b.After {
		sizes = append(sizes, p.MsgSize)
	}
	res, err := experiments.RunFig9(sizes, *total)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareFig9(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (all ratios within %.0f%% of %s)\n", *tolerance*100, *baseline)
}
