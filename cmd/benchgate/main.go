// Command benchgate is the CI throughput-regression gate: it reruns the
// Figure 9 TTCP workload at the committed baseline's message sizes and
// fails when any NapletSocket/TCP throughput ratio falls more than the
// tolerance below the baseline's. Comparing ratios rather than absolute
// Mbps keeps the gate meaningful on whatever machine CI happens to run on.
//
// With -naming-baseline it instead gates the naming control plane: the
// sharded-cluster lookup benchmark is rerun and fails when the
// cached/direct speedup regresses past the tolerance or the hit rate
// under the migration storm drops below the absolute floor.
//
// With -c10k-baseline it gates connection scaling: the live connection
// storm is rerun (at a reduced population with -c10k-short) and fails
// when heap-per-connection or the wave p99 regress past the tolerance,
// or when goroutine growth across the population exceeds the O(1)
// ceiling — i.e. a per-connection goroutine crept back in.
//
// Usage:
//
//	benchgate [-baseline BENCH_fig9.json] [-tolerance 0.5] [-total 16777216]
//	benchgate -naming-baseline BENCH_naming.json [-naming-short] [-tolerance 0.5]
//	benchgate -c10k-baseline BENCH_c10k.json [-c10k-short] [-tolerance 0.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"naplet/internal/experiments"
)

var (
	baseline  = flag.String("baseline", "BENCH_fig9.json", "committed baseline file")
	tolerance = flag.Float64("tolerance", 0.5, "allowed fractional ratio drop before failing")
	total     = flag.Int64("total", 16<<20, "bytes per measurement point")
	encrypted = flag.Bool("encrypted", false, "gate the AEAD record layer: rerun Fig 9 with AES-256-GCM on and compare against the baseline's encrypted series plus the cleartext-relative floor")

	namingBaseline = flag.String("naming-baseline", "", "committed naming baseline (BENCH_naming.json); when set, gate the naming benchmark instead of Fig 9")
	namingShort    = flag.Bool("naming-short", false, "run the naming benchmark at a reduced population and window (CI smoke)")

	c10kBaseline = flag.String("c10k-baseline", "", "committed storm baseline (BENCH_c10k.json); when set, gate the connection storm instead of Fig 9")
	c10kShort    = flag.Bool("c10k-short", false, "run the storm at a reduced population (CI smoke: 10k conns, 1k wave)")
)

func namingGate() {
	b, err := experiments.LoadBenchNaming(*namingBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cfg := experiments.NamingBenchConfig{Agents: b.Agents}
	if *namingShort {
		cfg.Agents = 1000
		cfg.Duration = time.Second
	}
	res, err := experiments.RunNamingBench(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareNaming(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (naming speedup within %.0f%% of %s, hit rate above %.0f%%)\n",
		*tolerance*100, *namingBaseline, experiments.MinNamingHitRate*100)
}

func c10kGate() {
	b, err := experiments.LoadBenchC10K(*c10kBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cfg := experiments.C10KConfig{Conns: b.Conns, Wave: b.Wave}
	if *c10kShort {
		cfg.Conns = 10_000
		cfg.Wave = 1_000
	}
	res, err := experiments.RunC10K(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareC10K(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (per-conn footprint within %.0f%% of %s, goroutine growth under %d)\n",
		*tolerance*100, *c10kBaseline, experiments.MaxC10KGoroutineGrowth)
}

func main() {
	flag.Parse()
	if *namingBaseline != "" {
		namingGate()
		return
	}
	if *c10kBaseline != "" {
		c10kGate()
		return
	}
	b, err := experiments.LoadBenchFig9(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if len(b.After) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no After series to gate against\n", *baseline)
		os.Exit(1)
	}
	if *encrypted {
		if len(b.Encrypted) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s has no Encrypted series to gate against\n", *baseline)
			os.Exit(1)
		}
		sizes := make([]int, 0, len(b.Encrypted))
		for _, p := range b.Encrypted {
			sizes = append(sizes, p.MsgSize)
		}
		res, err := experiments.RunFig9Encrypted(sizes, *total)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		report, err := experiments.CompareFig9Encrypted(b, res, *tolerance)
		fmt.Print(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: ok (encrypted ratios within %.0f%% of %s and above %.0f%% of cleartext at >=%dB)\n",
			*tolerance*100, *baseline, experiments.EncryptedFloorFrac*100, experiments.EncryptedFloorMinSize)
		return
	}
	sizes := make([]int, 0, len(b.After))
	for _, p := range b.After {
		sizes = append(sizes, p.MsgSize)
	}
	res, err := experiments.RunFig9(sizes, *total)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	report, err := experiments.CompareFig9(b, res, *tolerance)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (all ratios within %.0f%% of %s)\n", *tolerance*100, *baseline)
}
