// Command napletsim runs the Section 5 performance model of the paper: a
// discrete-event simulation of two connected mobile agents migrating with
// exponentially distributed service times, reporting connection migration
// costs by priority class and episode mix — plus the analytic overhead
// model of Figure 13.
//
// With -storm it instead runs a live connection storm (not a model): a
// three-host deployment opens -storm-conns NapletSocket connections, a
// migration wave sweeps -storm-wave of them to a third host, and the run
// reports heap per connection, goroutine growth, and per-connection
// suspend-to-resumed percentiles. -storm-out writes the result as a
// BENCH_c10k.json baseline for the CI storm gate.
//
// Examples:
//
//	napletsim -mean-a 500 -ratio 3          # one simulation point
//	napletsim -sweep                        # the full Figure 12 sweep
//	napletsim -overhead -lambda 50 -r 5     # one Figure 13 point
//	napletsim -storm                        # 100k conns, 10k-conn wave
//	napletsim -storm -storm-conns 10000 -storm-out BENCH_c10k.json
package main

import (
	"flag"
	"fmt"
	"os"

	"naplet/internal/experiments"
	"naplet/internal/model"
)

var (
	meanA      = flag.Float64("mean-a", 500, "agent A mean service time (ms)")
	ratio      = flag.Float64("ratio", 1, "migration rate ratio µb/µa")
	migrations = flag.Int("migrations", 20000, "migrations to simulate per agent")
	seed       = flag.Int64("seed", 1, "random seed")
	sweep      = flag.Bool("sweep", false, "run the full Figure 12 sweep")
	overhead   = flag.Bool("overhead", false, "evaluate the Figure 13 overhead model")
	lambda     = flag.Float64("lambda", 10, "message exchange rate for -overhead")
	rRel       = flag.Float64("r", 1, "relative message exchange rate r = λ/µ for -overhead")

	storm      = flag.Bool("storm", false, "run the live connection storm (C10K scaling scenario)")
	stormConns = flag.Int("storm-conns", 100_000, "logical connections for -storm")
	stormWave  = flag.Int("storm-wave", 0, "connections swept by the migration wave (default conns/10)")
	stormOut   = flag.String("storm-out", "", "write the storm result as a BENCH_c10k.json baseline")
)

func runStorm() {
	res, err := experiments.RunC10K(experiments.C10KConfig{
		Conns: *stormConns,
		Wave:  *stormWave,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "napletsim: storm: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Summary())
	growth := res.SteadyGoroutines - res.BaselineGoroutines
	fmt.Printf("goroutine growth across %d conns: %d (ceiling %d)\n",
		res.Config.Conns, growth, experiments.MaxC10KGoroutineGrowth)
	if *stormOut != "" {
		if err := experiments.WriteBenchC10K(*stormOut, experiments.BenchC10KFrom(res)); err != nil {
			fmt.Fprintf(os.Stderr, "napletsim: writing %s: %v\n", *stormOut, err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s\n", *stormOut)
	}
}

func main() {
	flag.Parse()
	p := model.PaperParams()
	switch {
	case *storm:
		runStorm()

	case *sweep:
		res := experiments.RunFig12(nil, nil, *migrations, *seed)
		fmt.Println("Figure 12(a): high-priority agent connection migration cost")
		fmt.Print(res.TableHigh())
		fmt.Println()
		fmt.Println("Figure 12(b): low-priority agent connection migration cost")
		fmt.Print(res.TableLow())

	case *overhead:
		fmt.Printf("overhead(λ=%g, r=%g) = %.3f\n", *lambda, *rRel, p.Overhead(*lambda, *rRel))

	default:
		if *meanA <= 0 || *ratio <= 0 {
			fmt.Fprintln(os.Stderr, "napletsim: -mean-a and -ratio must be positive")
			os.Exit(2)
		}
		res := model.Simulate(model.SimConfig{
			Params:       p,
			MeanServiceA: *meanA,
			MeanServiceB: *meanA / *ratio,
			Migrations:   *migrations,
			Seed:         *seed,
		})
		fmt.Printf("params: T_control=%.1fms T_suspend=%.1fms T_resume=%.1fms T_a-migrate=%.1fms\n",
			p.TControl, p.TSuspend, p.TResume, p.TAMigrate)
		fmt.Printf("mean service: A=%.0fms B=%.0fms (µb/µa=%.2f), %d migrations/agent, seed %d\n",
			*meanA, *meanA / *ratio, *ratio, *migrations, *seed)
		fmt.Printf("mean connection migration cost: high-priority %.1fms, low-priority %.1fms (single pattern: %.1fms)\n",
			res.MeanCostHigh, res.MeanCostLow, p.SingleCost())
		total := res.Singles + res.Overlapped + res.NonOverlapped
		fmt.Printf("episode mix: %d single, %d overlapped, %d non-overlapped (of %d)\n",
			res.Singles, res.Overlapped, res.NonOverlapped, total)
	}
}
