// Command ttcp is the Test-TCP throughput tool of Section 4.3, usable in
// three ways:
//
//	ttcp -serve :9000                 # raw TCP sink (receiver)
//	ttcp -to host:9000 -size 8192     # raw TCP sender against a sink
//	ttcp -pair -kind naplet           # in-process pair over NapletSocket
//
// The -pair mode measures a sender/sink pair in one process over either a
// plain TCP connection or an established NapletSocket connection — the
// Figure 9 workload.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"naplet/internal/experiments"
	"naplet/internal/ttcp"
)

var (
	serve = flag.String("serve", "", "listen address: run as a raw TCP sink")
	to    = flag.String("to", "", "sink address: run as a raw TCP sender")
	pair  = flag.Bool("pair", false, "run an in-process sender/sink pair")
	kind  = flag.String("kind", "tcp", "connection kind for -pair: tcp or naplet")
	size  = flag.Int("size", 8192, "message size in bytes")
	total = flag.Int64("total", 64<<20, "total bytes to transfer")
)

func main() {
	flag.Parse()
	switch {
	case *serve != "":
		if err := runSink(*serve); err != nil {
			fatal(err)
		}
	case *to != "":
		if err := runSender(*to); err != nil {
			fatal(err)
		}
	case *pair:
		if err := runPair(); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ttcp:", err)
	os.Exit(1)
}

func runSink(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("ttcp: sink listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			res, err := ttcp.Receive(conn, 64<<10, *total)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ttcp: receive: %v\n", err)
				return
			}
			fmt.Println("ttcp: received", res)
		}()
	}
}

func runSender(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	res, err := ttcp.Send(conn, *size, *total)
	if err != nil {
		return err
	}
	fmt.Println("ttcp: sent", res)
	return nil
}

func runPair() error {
	res, err := experiments.RunFig9([]int{*size}, *total)
	if err != nil {
		return err
	}
	p := res.Points[0]
	switch *kind {
	case "tcp":
		fmt.Printf("ttcp: tcp pair: %.2f Mbit/s (msg %dB)\n", p.TCPMbps, p.MsgSize)
	case "naplet":
		fmt.Printf("ttcp: naplet pair: %.2f Mbit/s (msg %dB)\n", p.NapletMbps, p.MsgSize)
	default:
		fmt.Printf("ttcp: tcp %.2f Mbit/s, naplet %.2f Mbit/s (msg %dB)\n", p.TCPMbps, p.NapletMbps, p.MsgSize)
	}
	return nil
}
