// Command repro regenerates the tables and figures of the paper's
// evaluation (Sections 4 and 5) from the live NapletSocket implementation
// and the Section 5 model.
//
// Usage:
//
//	repro [flags] <experiment>...
//
// Experiments: table1, suspres, fig7, fig8, fig9, fig10a, fig10b, fig12a,
// fig12b, fig13, motivation, wan, wanmatrix, ablations, naming, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"naplet/internal/experiments"
	"naplet/internal/netem"
)

var (
	iters      = flag.Int("iters", 100, "iterations for latency experiments (table1, suspres, fig8)")
	quick      = flag.Bool("quick", false, "smaller volumes and sweeps for a fast pass")
	seed       = flag.Int64("seed", 1, "seed for the Section 5 simulations")
	charts     = flag.Bool("chart", true, "render ASCII charts for the figures")
	csvDir     = flag.String("csv", "", "directory to write per-figure CSV files into")
	benchJSON  = flag.String("bench-json", "", "path to BENCH_fig9.json: fig9 refreshes its After series there (Before is preserved)")
	namingJSON = flag.String("naming-json", "", "path to BENCH_naming.json: naming refreshes the committed baseline there (Note is preserved)")
	wanJSON    = flag.String("wan-json", "", "path to BENCH_wan.json: wanmatrix refreshes the committed baseline there (Note is preserved)")
)

// writeCSV writes one figure's CSV when -csv is set.
func writeCSV(name, content string) {
	if *csvDir == "" {
		return
	}
	path := filepath.Join(*csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "repro: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("(csv: %s)\n", path)
}

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var list []string
	for _, a := range args {
		if a == "all" {
			list = []string{"table1", "suspres", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig12a", "fig12b", "fig13", "motivation", "wan", "wanmatrix", "ablations", "naming"}
			break
		}
		list = append(list, strings.ToLower(a))
	}
	for _, name := range list {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "repro %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: repro [flags] <experiment>...

experiments:
  table1   Table 1: open/close latency (TCP, NapletSocket w/o and w/ security)
  suspres  Section 4.2: suspend/resume cost vs close+reopen
  fig7     Figure 7: reliable-delivery message trace across migrations
  fig8     Figure 8: breakdown of the connection-open latency
  fig9     Figure 9: TTCP throughput vs message size (TCP vs NapletSocket)
  fig10a   Figure 10(a): effective throughput vs agent service time
  fig10b   Figure 10(b): effective throughput vs migration hops
  fig12a   Figure 12(a): simulated migration cost, high-priority agent
  fig12b   Figure 12(b): simulated migration cost, low-priority agent
  fig13    Figure 13: connection-migration overhead vs message exchange rate
  motivation  Section 1: round trip over NapletSocket vs the PostOffice mailbox
  wan      Table 1/§4.2 latencies under emulated network delay (1/5/10 ms one-way)
  wanmatrix resume/detector robustness under the named WAN profiles (lan..lossy-cell)
  ablations design-choice ablations (handoff, control transport, failure-resume)
  naming   sharded location-service lookups under a migration storm (cached vs direct)
  all      everything above

flags:
`)
	flag.PrintDefaults()
}

func header(title string) {
	fmt.Printf("==== %s ====\n", title)
}

func run(name string) error {
	start := time.Now()
	defer func() { fmt.Printf("(%s: %v)\n\n", name, time.Since(start).Round(time.Millisecond)) }()
	n := *iters
	if *quick && n > 20 {
		n = 20
	}
	switch name {
	case "table1":
		header("Table 1: latency to open/close a connection")
		res, err := experiments.RunTable1(n)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())

	case "suspres":
		header("Section 4.2: suspend/resume vs close+reopen")
		res, err := experiments.RunSuspendResume(n)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())

	case "fig7":
		header("Figure 7: reliable communication message trace")
		res, err := experiments.RunFig7(40, time.Millisecond, []int{10, 20, 30})
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		fmt.Println(res.Summary())

	case "fig8":
		header("Figure 8: breakdown of the latency to open a connection")
		res, err := experiments.RunFig8(n)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())

	case "fig9":
		header("Figure 9: throughput of NapletSocket vs TCP socket")
		total := int64(16 << 20)
		if *quick {
			total = 2 << 20
		}
		res, err := experiments.RunFig9(experiments.DefaultFig9Sizes(), total)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		if *charts {
			fmt.Print(res.Chart())
		}
		writeCSV("fig9", res.CSV())
		fmt.Println("\nwith AES-256-GCM record layer:")
		enc, err := experiments.RunFig9Encrypted(experiments.DefaultFig9Sizes(), total)
		if err != nil {
			return err
		}
		fmt.Print(enc.Table())
		writeCSV("fig9_encrypted", enc.CSV())
		if *benchJSON != "" {
			b, err := experiments.LoadBenchFig9(*benchJSON)
			if err != nil {
				b = &experiments.BenchFig9{}
			}
			b.TotalBytes = total
			b.After = experiments.BenchPoints(res)
			b.Encrypted = experiments.BenchPoints(enc)
			if err := experiments.WriteBenchFig9(*benchJSON, b); err != nil {
				return fmt.Errorf("writing %s: %w", *benchJSON, err)
			}
			fmt.Printf("(bench baseline: %s)\n", *benchJSON)
		}

	case "fig10a":
		header("Figure 10(a): effective throughput vs migration frequency (single migration)")
		services := experiments.DefaultFig10aServices()
		if *quick {
			services = services[:4]
		}
		res, err := experiments.RunFig10a(services, 3, 2048, 40*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		if *charts {
			fmt.Print(res.Chart())
		}
		writeCSV("fig10a", res.CSV())

	case "fig10b":
		header("Figure 10(b): effective throughput vs migration hops")
		hops := 7
		if *quick {
			hops = 3
		}
		res, err := experiments.RunFig10b(hops, 150*time.Millisecond, 2048, 40*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		if *charts {
			fmt.Print(res.Chart())
		}
		writeCSV("fig10b", res.CSV())

	case "fig12a", "fig12b":
		migrations := 20000
		if *quick {
			migrations = 4000
		}
		res := experiments.RunFig12(nil, nil, migrations, *seed)
		if name == "fig12a" {
			header("Figure 12(a): connection migration cost, high-priority agent")
			fmt.Print(res.TableHigh())
			if *charts {
				fmt.Print(res.ChartHigh())
			}
			writeCSV("fig12a", res.CSVHigh())
		} else {
			header("Figure 12(b): connection migration cost, low-priority agent")
			fmt.Print(res.TableLow())
			if *charts {
				fmt.Print(res.ChartLow())
			}
			writeCSV("fig12b", res.CSVLow())
		}

	case "fig13":
		header("Figure 13: connection migration overhead vs message exchange rate")
		res := experiments.RunFig13(nil, nil)
		fmt.Print(res.Table())
		if *charts {
			fmt.Print(res.Chart())
		}
		writeCSV("fig13", res.CSV())

	case "wan":
		header("Emulated-network latencies (paper's absolute regime)")
		for _, oneWay := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
			w, err := experiments.RunWAN(oneWay, n/4+3)
			if err != nil {
				return err
			}
			fmt.Print(w.Table())
			fmt.Println()
		}

	case "wanmatrix":
		header("WAN scenario matrix: resume under break/migrate chaos per netem profile")
		cfg := experiments.WANMatrixConfig{}
		if *quick {
			cfg.Profiles = []netem.Profile{netem.ProfileMetro, netem.ProfileContinental}
			cfg.Breaks = 2
		}
		res, err := experiments.RunWANMatrix(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		if *wanJSON != "" {
			b := experiments.BenchWANFrom(res)
			old, err := experiments.LoadBenchWAN(*wanJSON)
			if err == nil {
				b.Note = old.Note
			}
			if err := experiments.WriteBenchWAN(*wanJSON, b); err != nil {
				return fmt.Errorf("writing %s: %w", *wanJSON, err)
			}
			fmt.Printf("(bench baseline: %s)\n", *wanJSON)
		}

	case "motivation":
		header("Motivation (Section 1): synchronous transient vs asynchronous persistent")
		m, err := experiments.RunMotivation(n * 2)
		if err != nil {
			return err
		}
		fmt.Print(m.Table())

	case "ablations":
		header("Ablation: socket handoff vs query-then-connect (paper §3.4)")
		h, err := experiments.RunAblationHandoff(n)
		if err != nil {
			return err
		}
		fmt.Print(h.Table())
		header("Ablation: control channel transport (paper §3.5)")
		c, err := experiments.RunAblationControl(n * 2)
		if err != nil {
			return err
		}
		fmt.Print(c.Table())
		header("Ablation: failure-resume extension (paper §7 future work)")
		f, err := experiments.RunAblationFailure(5)
		if err != nil {
			return err
		}
		fmt.Print(f.Table())

	case "naming":
		header("Naming control plane: sharded-cluster lookups under a migration storm")
		cfg := experiments.NamingBenchConfig{}
		if *quick {
			cfg.Agents = 1000
			cfg.Duration = time.Second
		}
		res, err := experiments.RunNamingBench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		if *namingJSON != "" {
			b := experiments.BenchNamingFrom(res)
			old, err := experiments.LoadBenchNaming(*namingJSON)
			if err == nil {
				b.Note = old.Note
			}
			if err := experiments.WriteBenchNaming(*namingJSON, b); err != nil {
				return fmt.Errorf("writing %s: %w", *namingJSON, err)
			}
			fmt.Printf("(bench baseline: %s)\n", *namingJSON)
		}

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
