package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"naplet"
	"naplet/internal/behaviors"
	"naplet/internal/core"
	"naplet/internal/naming"
	"naplet/internal/naming/cluster"
	"naplet/internal/obs"
	"naplet/internal/transport"
)

// fetchMetrics pulls and decodes the /metrics JSON from a debug server.
func fetchMetrics(t *testing.T, addr string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return snap
}

// TestDebugServerAcrossMigration is the acceptance check for the debug
// surface: a scripted migration runs against a live debug server and the
// /metrics JSON it reports must show the FSM transition counters and the
// per-phase suspend/resume timings moving.
//
// Topology: echoer stays on h1 (which carries the debug server); walker
// launches on h2 and roams h2 -> h1 -> h2 while holding one connection to
// the echoer. From h1's point of view that is one accept, one arrival with
// resumed connections, and one departure with suspended connections.
func TestDebugServerAcrossMigration(t *testing.T) {
	svc := naming.NewService()
	breg := naplet.NewRegistry()
	behaviors.RegisterAll(breg)

	newNode := func(name string) (*naplet.Node, *obs.Registry) {
		met := obs.NewRegistry()
		node, err := naplet.NewNode(naplet.Config{
			Name:      name,
			Directory: naming.Local{Svc: svc},
			Registry:  breg,
			Metrics:   met,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		return node, met
	}
	n1, met1 := newNode("h1")
	n2, _ := newNode("h2")

	srv, addr, err := startDebugServer("127.0.0.1:0", n1, met1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	before := fetchMetrics(t, addr)

	if err := n1.Launch("echoer", &behaviors.Echo{}); err != nil {
		t.Fatal(err)
	}
	if err := n2.Launch("walker", &behaviors.Roamer{
		Target:     "echoer",
		Docks:      []string{n1.DockAddr(), n2.DockAddr()},
		MsgsPerHop: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// The walker deregisters when its itinerary completes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		if _, err := svc.Lookup(ctx, "walker"); errors.Is(err, naming.ErrNotFound) {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("walker never finished")
		case <-time.After(5 * time.Millisecond):
		}
	}

	after := fetchMetrics(t, addr)

	if before.Counters["fsm.transitions"] != 0 {
		t.Errorf("fsm.transitions before any traffic = %d", before.Counters["fsm.transitions"])
	}
	if after.Counters["fsm.transitions"] <= before.Counters["fsm.transitions"] {
		t.Errorf("fsm.transitions did not move: before %d, after %d",
			before.Counters["fsm.transitions"], after.Counters["fsm.transitions"])
	}
	for name, want := range map[string]uint64{
		"conn.accepts":                         1, // walker dialed the echoer
		"conn.suspends":                        1, // walker departing h1
		"conn.resumes":                         1, // walker arriving on h1
		"migrate.departs":                      1,
		"migrate.arrivals":                     1,
		"fsm.transition.ESTABLISHED->SUS_SENT": 1,
	} {
		if got := after.Counters[name]; got != want {
			t.Errorf("h1 %s = %d, want %d (counters %v)", name, got, want, after.Counters)
		}
	}
	for _, g := range []string{
		"phase.suspend.handshaking_ms",
		"phase.suspend.drain_ms",
		"phase.suspend.serialize_ms",
		"phase.resume.handshaking_ms",
		"phase.resume.open-socket_ms",
	} {
		if before.Gauges[g] != 0 {
			t.Errorf("%s before any migration = %v", g, before.Gauges[g])
		}
		if after.Gauges[g] <= 0 {
			t.Errorf("%s = %v after migration, want > 0", g, after.Gauges[g])
		}
	}
	if h := after.Histograms["conn.suspend_ms"]; h.Count != 1 || h.P50 <= 0 {
		t.Errorf("conn.suspend_ms = %+v", h)
	}
}

// TestDebugServerEndpoints exercises /connz (both renderings), the index
// page, and the pprof mount on a node with a live connection.
func TestDebugServerEndpoints(t *testing.T) {
	svc := naming.NewService()
	breg := naplet.NewRegistry()
	behaviors.RegisterAll(breg)
	met := obs.NewRegistry()
	node, err := naplet.NewNode(naplet.Config{
		Name:      "h1",
		Directory: naming.Local{Svc: svc},
		Registry:  breg,
		Metrics:   met,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	srv, addr, err := startDebugServer("127.0.0.1:0", node, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// A pinger talking to an echoer on the same host keeps a connection
	// resident long enough to show up in /connz.
	if err := node.Launch("echoer", &behaviors.Echo{}); err != nil {
		t.Fatal(err)
	}
	if err := node.Launch("pinger", &behaviors.Pinger{Target: "echoer", Count: 200, IntervalMs: 5}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Wait for the connection to establish, then read the table.
	deadline := time.Now().Add(10 * time.Second)
	var table string
	for {
		_, table = get("/connz")
		if strings.Contains(table, "ESTABLISHED") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ESTABLISHED row in /connz:\n%s", table)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(table, "pinger") || !strings.Contains(table, "echoer") {
		t.Errorf("/connz missing agent names:\n%s", table)
	}

	code, body := get("/connz?format=json")
	if code != http.StatusOK {
		t.Fatalf("/connz?format=json status = %d", code)
	}
	var connz struct {
		Conns      []core.Info      `json:"conns"`
		Transports []transport.Info `json:"transports"`
	}
	if err := json.Unmarshal([]byte(body), &connz); err != nil {
		t.Fatalf("decoding /connz json: %v\n%s", err, body)
	}
	if len(connz.Conns) == 0 {
		t.Errorf("/connz json has no connections:\n%s", body)
	}
	// Both agents live on the same host here, so the data stream is local
	// and no shared transport need exist — but every listed connection must
	// reference a transport that appears in the transports section (or
	// none at all).
	byID := make(map[string]bool, len(connz.Transports))
	for _, tr := range connz.Transports {
		byID[tr.ID.String()] = true
	}
	for _, in := range connz.Conns {
		if in.Transport != "" && !byID[in.Transport] {
			t.Errorf("conn %s references transport %s not in transports list", in.ID, in.Transport)
		}
	}

	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", code)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d", code)
	}

	snap := fetchMetrics(t, addr)
	if snap.Gauges["conn.resident"] < 1 {
		t.Errorf("conn.resident = %v, want >= 1", snap.Gauges["conn.resident"])
	}
	if snap.Counters["conn.opens"] != 1 {
		t.Errorf("conn.opens = %d, want 1", snap.Counters["conn.opens"])
	}
}

// TestConnzTransportState pins the transport health columns on /connz: an
// inter-host connection must show its shared transport with STATE
// "connected", the negotiated CIPHER, and the negotiated LIMITS in both the
// text table and the JSON rendering. Both nodes here run with encryption on
// (the default), so the session must report aes256gcm and the encrypted
// session counter must surface in the Prometheus exposition.
func TestConnzTransportState(t *testing.T) {
	svc := naming.NewService()
	breg := naplet.NewRegistry()
	behaviors.RegisterAll(breg)

	newNode := func(name string) (*naplet.Node, *obs.Registry) {
		met := obs.NewRegistry()
		node, err := naplet.NewNode(naplet.Config{
			Name:      name,
			Directory: naming.Local{Svc: svc},
			Registry:  breg,
			Metrics:   met,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		return node, met
	}
	n1, met := newNode("h1")
	n2, _ := newNode("h2")

	srv, addr, err := startDebugServer("127.0.0.1:0", n1, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	if err := n1.Launch("echoer", &behaviors.Echo{}); err != nil {
		t.Fatal(err)
	}
	// A cross-host pinger forces a shared transport between h1 and h2.
	if err := n2.Launch("pinger", &behaviors.Pinger{Target: "echoer", Count: 500, IntervalMs: 5}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	deadline := time.Now().Add(10 * time.Second)
	var table string
	for {
		table = get("/connz")
		if strings.Contains(table, "connected") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no connected transport row in /connz:\n%s", table)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, col := range []string{"STATE", "CIPHER", "LIMITS", "RTT", "RELAY"} {
		if !strings.Contains(table, col) {
			t.Errorf("/connz transport table missing %s column:\n%s", col, table)
		}
	}
	if !strings.Contains(table, "aes256gcm") {
		t.Errorf("/connz transport table missing negotiated cipher:\n%s", table)
	}

	var connz struct {
		Transports []transport.Info `json:"transports"`
	}
	body := get("/connz?format=json")
	if err := json.Unmarshal([]byte(body), &connz); err != nil {
		t.Fatalf("decoding /connz json: %v\n%s", err, body)
	}
	if len(connz.Transports) == 0 {
		t.Fatalf("no transports in /connz json:\n%s", body)
	}
	for _, tr := range connz.Transports {
		if tr.State != "connected" {
			t.Errorf("transport %s state = %q, want \"connected\"", tr.ID, tr.State)
		}
		if tr.Cipher != "aes256gcm" {
			t.Errorf("transport %s cipher = %q, want \"aes256gcm\"", tr.ID, tr.Cipher)
		}
		if tr.Limits.MaxPayload == 0 || tr.Limits.InitialWindow == 0 {
			t.Errorf("transport %s reports zero limits: %+v", tr.ID, tr.Limits)
		}
		// The RTT estimator is seeded by the handshake itself, so a live
		// transport always reports a positive smoothed RTT; this session
		// was dialed directly, so it must not claim to be relayed.
		if tr.RTT <= 0 {
			t.Errorf("transport %s RTT = %v, want > 0 (handshake-seeded)", tr.ID, tr.RTT)
		}
		if tr.Relayed {
			t.Errorf("transport %s marked relayed on a direct dial", tr.ID)
		}
	}

	// The encrypted-session counter must reach the Prometheus exposition
	// under the dots-to-underscores name mapping.
	prom := get("/metrics?format=prom")
	if !strings.Contains(prom, "# TYPE transport_encrypted counter") ||
		!strings.Contains(prom, "\ntransport_encrypted ") ||
		strings.Contains(prom, "\ntransport_encrypted 0\n") {
		t.Errorf("/metrics?format=prom missing nonzero transport_encrypted counter:\n%s", prom)
	}
	if !strings.Contains(prom, "\ntransport_cleartext_legacy 0\n") {
		t.Errorf("/metrics?format=prom missing transport_cleartext_legacy counter:\n%s", prom)
	}
	// The path-RTT gauge and the relay fallback counter reach the
	// exposition too: rtt_ms is live (nonzero) on an established session,
	// relay_dials stays 0 because the direct dial succeeded.
	if !strings.Contains(prom, "# TYPE transport_rtt_ms gauge") ||
		strings.Contains(prom, "\ntransport_rtt_ms 0\n") {
		t.Errorf("/metrics?format=prom missing nonzero transport_rtt_ms gauge:\n%s", prom)
	}
	if !strings.Contains(prom, "\ntransport_relay_dials 0\n") {
		t.Errorf("/metrics?format=prom missing transport_relay_dials counter:\n%s", prom)
	}
}

// TestNamezEndpoint runs a napletd-shaped node against a single-process
// naming cluster node and checks the /namez rendering: the hosted shard
// table and the controller's location-cache stats, in both text and JSON.
func TestNamezEndpoint(t *testing.T) {
	// Reserve a loopback UDP address so the layout can name the cluster
	// node before it binds.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	caddr := pc.LocalAddr().String()
	pc.Close()

	layout, err := cluster.BuildLayout([]string{caddr}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cnode, err := cluster.NewNode(cluster.NodeConfig{Addr: caddr, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cnode.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	cli, err := cluster.NewClient(ctx, cluster.ClientConfig{Seeds: []string{caddr}})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	breg := naplet.NewRegistry()
	behaviors.RegisterAll(breg)
	met := obs.NewRegistry()
	node, err := naplet.NewNode(naplet.Config{
		Name:      "h1",
		Directory: cli,
		Registry:  breg,
		Metrics:   met,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	srv, addr, err := startDebugServer("127.0.0.1:0", node, met, cnode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Register agents through the cluster and drive a connection so the
	// location cache sees at least one lookup.
	if err := node.Launch("echoer", &behaviors.Echo{}); err != nil {
		t.Fatal(err)
	}
	if err := node.Launch("pinger", &behaviors.Pinger{Target: "echoer", Count: 1}); err != nil {
		t.Fatal(err)
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer waitCancel()
	for {
		if _, err := cli.Lookup(waitCtx, "pinger"); errors.Is(err, naming.ErrNotFound) {
			break
		}
		select {
		case <-waitCtx.Done():
			t.Fatal("pinger never finished")
		case <-time.After(10 * time.Millisecond):
		}
	}

	resp, err := http.Get("http://" + addr + "/namez")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/namez status = %d", resp.StatusCode)
	}
	for _, want := range []string{"naming shard replicas", "leader", "location cache", "HIT-RATE"} {
		if !strings.Contains(text, want) {
			t.Errorf("/namez missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/namez?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var namez struct {
		Shards       []cluster.ShardInfo `json:"shards"`
		CacheEnabled bool                `json:"cache_enabled"`
		Cache        naming.CacheStats   `json:"location_cache"`
	}
	if err := json.Unmarshal(body, &namez); err != nil {
		t.Fatalf("decoding /namez json: %v\n%s", err, body)
	}
	if len(namez.Shards) != 2 {
		t.Fatalf("hosted shards = %d, want 2", len(namez.Shards))
	}
	records := 0
	for _, sh := range namez.Shards {
		if sh.Role != "leader" {
			t.Errorf("single-replica shard %d role = %q, want leader", sh.Shard, sh.Role)
		}
		records += sh.Records
	}
	if records == 0 {
		t.Error("cluster shows zero records after launches")
	}
	if !namez.CacheEnabled {
		t.Error("location cache reported disabled")
	}
	if namez.Cache.Hits+namez.Cache.Misses == 0 {
		t.Errorf("location cache saw no lookups: %+v", namez.Cache)
	}
}
