package main

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"naplet"
	"naplet/internal/behaviors"
	"naplet/internal/naming"
	"naplet/internal/trace"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// logBuf is a concurrency-safe output sink.
type logBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// buildDaemon compiles the napletd binary into a temp dir once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "napletd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building napletd: %v\n%s", err, out)
	}
	return bin
}

// TestIntegrationTwoProcessDeployment builds the daemon and runs a real
// two-process deployment: host h1 carries the name server and an echo
// agent; host h2 launches a roaming agent that migrates h2 → h1 → h2 while
// keeping its connection to the echo agent — the full cross-process gob +
// docking + connection-migration path.
func TestIntegrationTwoProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildDaemon(t)

	ns := freePort(t)
	dock1 := freePort(t)
	dock2 := freePort(t)
	debug1 := freePort(t)

	var out1, out2 logBuf
	h1 := exec.Command(bin,
		"-name", "h1", "-nameserver-listen", ns, "-dock", dock1,
		"-debug-addr", debug1,
		"-launch", "echoer:echo",
	)
	h1.Stdout, h1.Stderr = &out1, &out1
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		h1.Process.Kill()
		h1.Wait()
	}()

	// Give the name server a moment to come up.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out1.String(), "location service listening") {
		if time.Now().After(deadline) {
			t.Fatalf("h1 never started:\n%s", out1.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	h2 := exec.Command(bin,
		"-name", "h2", "-nameserver", ns, "-dock", dock2,
		"-launch", fmt.Sprintf("walker:roamer:target=echoer,docks=%s;%s,msgs=2", dock1, dock2),
	)
	h2.Stdout, h2.Stderr = &out2, &out2
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		h2.Process.Kill()
		h2.Wait()
	}()

	// The walker starts on h2, migrates to h1 (appearing in h1's log), then
	// back to h2 where it finishes.
	deadline = time.Now().Add(30 * time.Second)
	for !strings.Contains(out2.String(), "itinerary done") {
		if time.Now().After(deadline) {
			t.Fatalf("walker never finished.\n--- h1 ---\n%s\n--- h2 ---\n%s", out1.String(), out2.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(out1.String(), "[walker@h1] roamer: echo") {
		t.Fatalf("walker never ran on h1:\n%s", out1.String())
	}
	if !strings.Contains(out2.String(), "[walker@h2] roamer: echo") {
		t.Fatalf("walker never ran on h2:\n%s", out2.String())
	}

	// The daemon's debug surface must reflect the migration that just ran:
	// h1 accepted the walker's connection, saw it arrive and depart, and
	// recorded per-phase suspend timings.
	snap := fetchMetrics(t, debug1)
	if snap.Counters["conn.accepts"] == 0 {
		t.Errorf("h1 /metrics conn.accepts = 0; counters = %v", snap.Counters)
	}
	if snap.Counters["migrate.arrivals"] == 0 || snap.Counters["migrate.departs"] == 0 {
		t.Errorf("h1 /metrics missing migration counters: %v", snap.Counters)
	}
	if snap.Counters["fsm.transitions"] == 0 {
		t.Error("h1 /metrics fsm.transitions = 0")
	}
	if snap.Gauges["phase.suspend.handshaking_ms"] <= 0 {
		t.Errorf("h1 /metrics phase.suspend.handshaking_ms = %v", snap.Gauges["phase.suspend.handshaking_ms"])
	}
}

// TestIntegrationCrashRecovery is the fault-tolerance acceptance test: a
// napletd process streaming numbered messages is SIGKILLed mid-transfer and
// restarted with the same journal directory. Recovery must re-register the
// streaming agent, restore its connection from the journal, and drive it
// through resume so the receiver — which survives in the test process —
// observes every message exactly once, in order, across the crash.
func TestIntegrationCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildDaemon(t)

	const total = 200

	// The surviving half of the deployment runs in this process: the name
	// server and the sink agent, whose trace recorder checks exactly-once.
	svc := naming.NewService()
	srv, err := naming.NewServer(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := naplet.NewRegistry()
	behaviors.RegisterAll(reg)
	rec := trace.NewRecorder()
	sink := &behaviors.Sink{Expect: total}
	sink.SetObserver(func(seq uint64, payload []byte, fromBuffer bool) {
		counter := uint64(0)
		if len(payload) >= 8 {
			counter = binary.BigEndian.Uint64(payload)
		}
		src := trace.FromSocket
		if fromBuffer {
			src = trace.FromBuffer
		}
		rec.Record(seq, counter, src)
	})
	node, err := naplet.NewNode(naplet.Config{
		Name:      "sinkhost",
		Directory: naming.Local{Svc: svc},
		Registry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Launch("sink", sink); err != nil {
		t.Fatal(err)
	}

	jdir := t.TempDir()
	dock := freePort(t)
	debug1 := freePort(t)
	debug2 := freePort(t)
	args := func(dbg string) []string {
		return []string{
			"-name", "h1", "-nameserver", srv.Addr(), "-dock", dock,
			"-journal-dir", jdir, "-heartbeat-interval", "50ms",
			"-postoffice=false", "-debug-addr", dbg,
			"-launch", fmt.Sprintf("streamer:streamer:target=sink,count=%d,interval=5,size=32", total),
		}
	}

	var out1, out2 logBuf
	dump := func() string {
		return fmt.Sprintf("--- first run ---\n%s\n--- restart ---\n%s\n--- trace ---\n%s",
			out1.String(), out2.String(), rec.Render())
	}
	waitFor := func(cond func() bool, d time.Duration, what string) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened\n%s", what, dump())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	h1 := exec.Command(bin, args(debug1)...)
	h1.Stdout, h1.Stderr = &out1, &out1
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			h1.Process.Kill()
			h1.Wait()
		}
	}()

	// Let the stream get well underway, then SIGKILL the sender mid-flight.
	waitFor(func() bool { return len(rec.Events()) >= total/4 }, 30*time.Second, "first quarter of the stream")
	if err := h1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	h1.Wait()
	killed = true
	if n := len(rec.Events()); n >= total {
		t.Fatalf("stream already complete (%d messages) before the crash landed", n)
	}

	// Restart with the same journal directory (and, deliberately, the same
	// -launch flag: the recovered agent must make it a logged no-op).
	h2 := exec.Command(bin, args(debug2)...)
	h2.Stdout, h2.Stderr = &out2, &out2
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		h2.Process.Kill()
		h2.Wait()
	}()

	waitFor(func() bool { return len(rec.Events()) >= total }, 60*time.Second, "rest of the stream after restart")

	if err := rec.VerifyExactlyOnceInOrder(); err != nil {
		t.Fatalf("reliability property violated across the crash: %v\n%s", err, dump())
	}
	if n := len(rec.Events()); n != total {
		t.Fatalf("delivered %d messages, want exactly %d\n%s", n, total, dump())
	}
	if !strings.Contains(out2.String(), "recovered 1 agent(s)") {
		t.Errorf("restart log missing journal recovery:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "already recovered from journal") {
		t.Errorf("restart log missing redundant-launch skip:\n%s", out2.String())
	}

	// The restarted daemon's metrics must show the recovery happened: the
	// journal replayed records, the agent and its connection were restored,
	// and the failure episode's duration was measured.
	snap := fetchMetrics(t, debug2)
	if snap.Counters["journal.replayed_records"] == 0 {
		t.Errorf("/metrics journal.replayed_records = 0; counters = %v", snap.Counters)
	}
	if snap.Counters["journal.appends"] == 0 {
		t.Errorf("/metrics journal.appends = 0")
	}
	if snap.Counters["agent.recoveries"] == 0 {
		t.Errorf("/metrics agent.recoveries = 0; counters = %v", snap.Counters)
	}
	if snap.Counters["fault.conn_recoveries"] == 0 {
		t.Errorf("/metrics fault.conn_recoveries = 0; counters = %v", snap.Counters)
	}
	if h := snap.Histograms["fault.recovery_ms"]; h.Count == 0 {
		t.Errorf("/metrics fault.recovery_ms has no samples; histograms = %v", snap.Histograms)
	}
	if snap.Counters["fault.probes"] == 0 {
		t.Errorf("/metrics fault.probes = 0 (heartbeat detector never ran)")
	}
}
