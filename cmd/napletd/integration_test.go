package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// logBuf is a concurrency-safe output sink.
type logBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestTwoProcessDeployment builds the daemon and runs a real two-process
// deployment: host h1 carries the name server and an echo agent; host h2
// launches a roaming agent that migrates h2 → h1 → h2 while keeping its
// connection to the echo agent — the full cross-process gob + docking +
// connection-migration path.
func TestTwoProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "napletd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building napletd: %v\n%s", err, out)
	}

	ns := freePort(t)
	dock1 := freePort(t)
	dock2 := freePort(t)
	debug1 := freePort(t)

	var out1, out2 logBuf
	h1 := exec.Command(bin,
		"-name", "h1", "-nameserver-listen", ns, "-dock", dock1,
		"-debug-addr", debug1,
		"-launch", "echoer:echo",
	)
	h1.Stdout, h1.Stderr = &out1, &out1
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		h1.Process.Kill()
		h1.Wait()
	}()

	// Give the name server a moment to come up.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out1.String(), "location service listening") {
		if time.Now().After(deadline) {
			t.Fatalf("h1 never started:\n%s", out1.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	h2 := exec.Command(bin,
		"-name", "h2", "-nameserver", ns, "-dock", dock2,
		"-launch", fmt.Sprintf("walker:roamer:target=echoer,docks=%s;%s,msgs=2", dock1, dock2),
	)
	h2.Stdout, h2.Stderr = &out2, &out2
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		h2.Process.Kill()
		h2.Wait()
	}()

	// The walker starts on h2, migrates to h1 (appearing in h1's log), then
	// back to h2 where it finishes.
	deadline = time.Now().Add(30 * time.Second)
	for !strings.Contains(out2.String(), "itinerary done") {
		if time.Now().After(deadline) {
			t.Fatalf("walker never finished.\n--- h1 ---\n%s\n--- h2 ---\n%s", out1.String(), out2.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(out1.String(), "[walker@h1] roamer: echo") {
		t.Fatalf("walker never ran on h1:\n%s", out1.String())
	}
	if !strings.Contains(out2.String(), "[walker@h2] roamer: echo") {
		t.Fatalf("walker never ran on h2:\n%s", out2.String())
	}

	// The daemon's debug surface must reflect the migration that just ran:
	// h1 accepted the walker's connection, saw it arrive and depart, and
	// recorded per-phase suspend timings.
	snap := fetchMetrics(t, debug1)
	if snap.Counters["conn.accepts"] == 0 {
		t.Errorf("h1 /metrics conn.accepts = 0; counters = %v", snap.Counters)
	}
	if snap.Counters["migrate.arrivals"] == 0 || snap.Counters["migrate.departs"] == 0 {
		t.Errorf("h1 /metrics missing migration counters: %v", snap.Counters)
	}
	if snap.Counters["fsm.transitions"] == 0 {
		t.Error("h1 /metrics fsm.transitions = 0")
	}
	if snap.Gauges["phase.suspend.handshaking_ms"] <= 0 {
		t.Errorf("h1 /metrics phase.suspend.handshaking_ms = %v", snap.Gauges["phase.suspend.handshaking_ms"])
	}
}
