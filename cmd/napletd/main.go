// Command napletd runs one Naplet agent server: a docking host, a
// NapletSocket controller, and (optionally) a post office, joined to a
// deployment through a shared location service. One napletd can also host
// the location service for the others.
//
// A two-host demo on one machine:
//
//	# terminal 1: host h1, runs the name server and an echo agent
//	napletd -name h1 -nameserver-listen 127.0.0.1:7000 \
//	        -dock 127.0.0.1:7001 -launch echoer:echo
//
//	# terminal 2: host h2, joins and launches a roaming client that
//	# migrates to h1 and back while talking to the echo agent
//	napletd -name h2 -nameserver 127.0.0.1:7000 -dock 127.0.0.1:7002 \
//	        -launch walker:roamer:target=echoer,docks=127.0.0.1:7001;127.0.0.1:7002
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"naplet"
	"naplet/internal/behaviors"
	"naplet/internal/naming"
	"naplet/internal/naming/cluster"
	"naplet/internal/obs"
	"naplet/internal/relay"
)

type launchList []string

func (l *launchList) String() string     { return strings.Join(*l, " ") }
func (l *launchList) Set(v string) error { *l = append(*l, v); return nil }

var (
	name         = flag.String("name", "host", "host name")
	dock         = flag.String("dock", "127.0.0.1:0", "docking listener address")
	control      = flag.String("control", "127.0.0.1:0", "control channel (UDP) address")
	data         = flag.String("data", "127.0.0.1:0", "redirector (TCP) address")
	mail         = flag.String("mail", "127.0.0.1:0", "post office (UDP) address")
	nsListen     = flag.String("nameserver-listen", "", "also host the location service on this address")
	nsAddr       = flag.String("nameserver", "", "address of the deployment's location service")
	namingSeeds  = flag.String("naming-seeds", "", "comma-separated addresses of the sharded naming cluster; the node resolves agents through it instead of a single name server")
	namingListen = flag.String("naming-cluster-listen", "", "also host a naming cluster node on this address (must appear in -naming-cluster-peers)")
	namingPeers  = flag.String("naming-cluster-peers", "", "comma-separated addresses of every naming cluster node, identical on all hosts (defaults to -naming-cluster-listen alone)")
	namingShards = flag.Int("naming-shards", 3, "shard count of the naming cluster (identical on all hosts)")
	namingRepl   = flag.Int("naming-replication", 2, "replicas per naming shard (identical on all hosts)")
	postoffice   = flag.Bool("postoffice", true, "run a post office on this host")
	insecure     = flag.Bool("insecure", false, "disable security (the paper's w/o-security mode)")
	tpEncrypt    = flag.Bool("transport-encrypt", true, "seal shared-transport frames with the negotiated AEAD cipher (secure mode only; false keeps authenticated-handshake cleartext framing)")
	tpMaxPayload = flag.Uint("transport-max-payload", 0, "advertised max mux frame payload in bytes, 1KiB..64KiB (0 = wire default 64KiB; the session uses the min of both hosts)")
	tpWindow     = flag.Uint("transport-window", 0, "advertised per-stream credit window in bytes, 4KiB..1GiB (0 = wire default 1MiB; the session uses the min of both hosts)")
	relayAddr    = flag.String("relay-addr", "", "also host a rendezvous relay (TCP) on this address, splicing transport sessions between hosts that cannot dial each other (off when empty)")
	relayVia     = flag.String("relay-via", "", "relay server to keep a registration leg open with; the shared transport also falls back to dialing peers through it when direct dials fail")
	clusterKey   = flag.String("cluster-secret", "", "shared secret authenticating the docking channel between hosts")
	debugAddr    = flag.String("debug-addr", "", "serve /metrics, /connz and pprof on this address (off when empty)")
	logLevel     = flag.String("log-level", "info", "runtime log level: debug, info, warn, error")
	journalDir   = flag.String("journal-dir", "", "checkpoint agent and connection state into a journal under this directory; restarting with the same directory recovers them (off when empty)")
	jrnSync      = flag.String("journal-sync", "interval", "journal fsync policy: always, interval, or never")
	heartbeat    = flag.Duration("heartbeat-interval", 0, "probe peer controllers at this interval and fail connections to confirmed-dead peers (off when zero)")
	nameTTL      = flag.Duration("name-ttl", 0, "expire location service entries not refreshed within this duration (only with -nameserver-listen; off when zero)")
	version      = flag.Bool("version", false, "print build information and exit")
	launches     launchList
)

// buildInfo returns the VCS commit this binary was built from (or "unknown")
// and the Go toolchain version.
func buildInfo() (commit, goVersion string) {
	commit, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			commit = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && commit != "unknown" {
		commit += "-dirty"
	}
	return
}

func main() {
	flag.Var(&launches, "launch", "agent to launch, as <id>:<kind>[:<k>=<v>[,<k>=<v>...]]; kinds: echo, pinger, roamer, streamer, sink, maillog (repeatable)")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("napletd: ")

	commit, goVersion := buildInfo()
	if *version {
		fmt.Printf("napletd commit=%s go=%s\n", commit, goVersion)
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("-log-level: %v", err)
	}
	metrics := obs.NewRegistry()
	// A constant-1 gauge whose labels carry the build identity — the
	// standard Prometheus idiom for joining metrics against build metadata.
	metrics.Gauge(fmt.Sprintf("build.info{commit=%q,go=%q}", commit, goVersion)).Set(1)

	cfg := naplet.Config{
		Name:              *name,
		DockAddr:          *dock,
		ControlAddr:       *control,
		DataAddr:          *data,
		MailAddr:          *mail,
		Insecure:          *insecure,
		WithPostOffice:    *postoffice,
		JournalDir:        *journalDir,
		JournalSync:       *jrnSync,
		HeartbeatInterval: *heartbeat,
		Logf:              log.Printf,
		Logger:            obs.NewLogger(log.Printf, level),
		Metrics:           metrics,
	}
	if *clusterKey != "" {
		cfg.ClusterSecret = []byte(*clusterKey)
	}
	cfg.Core.DisableTransportEncryption = !*tpEncrypt
	cfg.Core.TransportLimits.MaxPayload = uint32(*tpMaxPayload)
	cfg.Core.TransportLimits.InitialWindow = uint32(*tpWindow)
	cfg.Core.RelayVia = *relayVia

	if *relayAddr != "" {
		rs, err := relay.New(*relayAddr, log.Printf)
		if err != nil {
			log.Fatalf("starting relay: %v", err)
		}
		defer rs.Close()
		log.Printf("relay listening on %s", rs.Addr())
	}

	tracer := obs.NewTracer(*name)
	cfg.Tracer = tracer

	split := func(s string) []string {
		var out []string
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}

	// Location service: a sharded replicated cluster, a single name server
	// hosted locally, or a client of a remote one.
	var clusterNode *cluster.Node
	switch {
	case *namingListen != "" || *namingSeeds != "":
		logger := obs.NewLogger(log.Printf, level)
		if *namingListen != "" {
			peers := split(*namingPeers)
			if len(peers) == 0 {
				peers = []string{*namingListen}
			}
			layout, err := cluster.BuildLayout(peers, *namingShards, *namingRepl)
			if err != nil {
				log.Fatalf("naming cluster layout: %v", err)
			}
			clusterNode, err = cluster.NewNode(cluster.NodeConfig{
				Addr:    *namingListen,
				Layout:  layout,
				TTL:     *nameTTL,
				Metrics: metrics,
				Tracer:  tracer,
				Logger:  logger,
			})
			if err != nil {
				log.Fatalf("starting naming cluster node: %v", err)
			}
			defer clusterNode.Close()
			log.Printf("naming cluster node listening on %s (%d shards x %d replicas)",
				clusterNode.Addr(), layout.Shards, *namingRepl)
		}
		seeds := split(*namingSeeds)
		if len(seeds) == 0 {
			seeds = []string{*namingListen}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		cli, err := cluster.NewClient(ctx, cluster.ClientConfig{
			Seeds:   seeds,
			Metrics: metrics,
			Logger:  logger,
		})
		cancel()
		if err != nil {
			log.Fatalf("connecting to naming cluster %v: %v", seeds, err)
		}
		defer cli.Close()
		cfg.Directory = cli
	case *nsListen != "":
		svc := naming.NewService()
		svc.SetMetrics(metrics)
		if *nameTTL > 0 {
			svc.SetTTL(*nameTTL)
		}
		srv, err := naming.NewServer(svc, *nsListen)
		if err != nil {
			log.Fatalf("starting name server: %v", err)
		}
		defer srv.Close()
		log.Printf("location service listening on %s", srv.Addr())
		cli, err := naming.NewClient(srv.Addr())
		if err != nil {
			log.Fatalf("connecting to own name server: %v", err)
		}
		defer cli.Close()
		cfg.Directory = cli
	case *nsAddr != "":
		cli, err := naming.NewClient(*nsAddr)
		if err != nil {
			log.Fatalf("connecting to name server %s: %v", *nsAddr, err)
		}
		defer cli.Close()
		cfg.Directory = cli
	default:
		log.Fatal("one of -nameserver, -nameserver-listen, -naming-seeds, or -naming-cluster-listen is required")
	}

	reg := naplet.NewRegistry()
	behaviors.RegisterAll(reg)
	cfg.Registry = reg

	node, err := naplet.NewNode(cfg)
	if err != nil {
		log.Fatalf("starting node: %v", err)
	}
	defer node.Close()
	log.Printf("host %s up: dock=%s", node.Name(), node.DockAddr())

	if *debugAddr != "" {
		srv, addr, err := startDebugServer(*debugAddr, node, metrics, clusterNode)
		if err != nil {
			log.Fatalf("starting debug server: %v", err)
		}
		defer srv.Close()
		log.Printf("debug server listening on http://%s", addr)
	}

	recovered := 0
	if *journalDir != "" {
		recovered, err = node.Recover()
		if err != nil {
			log.Fatalf("recovering from journal: %v", err)
		}
		if recovered > 0 {
			log.Printf("recovered %d agent(s) from journal %s", recovered, *journalDir)
		}
	}

	for _, spec := range launches {
		id, b, err := parseLaunch(spec)
		if err != nil {
			log.Fatalf("-launch %q: %v", spec, err)
		}
		if err := node.Launch(id, b); err != nil {
			// A journal-recovered agent is already running; its -launch spec
			// (kept for restart convenience) is then redundant, not fatal.
			if recovered > 0 && strings.Contains(err.Error(), "already resident") {
				log.Printf("agent %s already recovered from journal; skipping -launch", id)
				continue
			}
			log.Fatalf("launching %s: %v", id, err)
		}
		log.Printf("launched agent %s", id)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}

// parseLaunch parses <id>:<kind>[:<k>=<v>[,...]].
func parseLaunch(spec string) (string, naplet.Behavior, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 {
		return "", nil, fmt.Errorf("want <id>:<kind>[:<args>]")
	}
	id, kind := parts[0], parts[1]
	args := map[string]string{}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return "", nil, fmt.Errorf("bad argument %q", kv)
			}
			args[k] = v
		}
	}
	atoi := func(s string, def int) int {
		if s == "" {
			return def
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return def
		}
		return n
	}
	switch kind {
	case "echo":
		return id, &behaviors.Echo{MaxConns: atoi(args["maxconns"], 0)}, nil
	case "pinger":
		if args["target"] == "" {
			return "", nil, fmt.Errorf("pinger needs target=<agent>")
		}
		return id, &behaviors.Pinger{
			Target:     args["target"],
			Count:      atoi(args["count"], 5),
			IntervalMs: atoi(args["interval"], 0),
		}, nil
	case "roamer":
		if args["target"] == "" {
			return "", nil, fmt.Errorf("roamer needs target=<agent>")
		}
		var docks []string
		if args["docks"] != "" {
			docks = strings.Split(args["docks"], ";")
		}
		return id, &behaviors.Roamer{
			Target:     args["target"],
			Docks:      docks,
			MsgsPerHop: atoi(args["msgs"], 3),
		}, nil
	case "streamer":
		if args["target"] == "" {
			return "", nil, fmt.Errorf("streamer needs target=<agent>")
		}
		return id, &behaviors.Streamer{
			Target:     args["target"],
			Count:      atoi(args["count"], 100),
			Size:       atoi(args["size"], 8),
			IntervalMs: atoi(args["interval"], 0),
		}, nil
	case "sink":
		return id, &behaviors.Sink{Expect: atoi(args["expect"], 0)}, nil
	case "maillog":
		return id, &behaviors.MailLogger{Expect: atoi(args["expect"], 0)}, nil
	default:
		return "", nil, fmt.Errorf("unknown behaviour kind %q", kind)
	}
}
