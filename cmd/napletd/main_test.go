package main

import (
	"testing"

	"naplet/internal/behaviors"
)

func TestParseLaunch(t *testing.T) {
	cases := []struct {
		spec    string
		wantID  string
		wantErr bool
		check   func(t *testing.T, b any)
	}{
		{spec: "e1:echo", wantID: "e1", check: func(t *testing.T, b any) {
			if _, ok := b.(*behaviors.Echo); !ok {
				t.Fatalf("type %T", b)
			}
		}},
		{spec: "e2:echo:maxconns=3", wantID: "e2", check: func(t *testing.T, b any) {
			if e := b.(*behaviors.Echo); e.MaxConns != 3 {
				t.Fatalf("maxconns = %d", e.MaxConns)
			}
		}},
		{spec: "p1:pinger:target=bob,count=7,interval=5", wantID: "p1", check: func(t *testing.T, b any) {
			p := b.(*behaviors.Pinger)
			if p.Target != "bob" || p.Count != 7 || p.IntervalMs != 5 {
				t.Fatalf("pinger = %+v", p)
			}
		}},
		{spec: "r1:roamer:target=bob,docks=a:1;b:2,msgs=4", wantID: "r1", check: func(t *testing.T, b any) {
			r := b.(*behaviors.Roamer)
			if r.Target != "bob" || len(r.Docks) != 2 || r.Docks[1] != "b:2" || r.MsgsPerHop != 4 {
				t.Fatalf("roamer = %+v", r)
			}
		}},
		{spec: "m1:maillog:expect=9", wantID: "m1", check: func(t *testing.T, b any) {
			if m := b.(*behaviors.MailLogger); m.Expect != 9 {
				t.Fatalf("maillog = %+v", m)
			}
		}},
		{spec: "noseparator", wantErr: true},
		{spec: "x:unknownkind", wantErr: true},
		{spec: "p2:pinger", wantErr: true},                // pinger needs a target
		{spec: "r2:roamer:docks=a", wantErr: true},        // roamer needs a target
		{spec: "p3:pinger:target=bob,bad", wantErr: true}, // malformed kv
	}
	for _, c := range cases {
		id, b, err := parseLaunch(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("%q: expected error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if id != c.wantID {
			t.Errorf("%q: id = %q", c.spec, id)
		}
		if c.check != nil {
			c.check(t, b)
		}
	}
}

func TestParseLaunchDefaults(t *testing.T) {
	_, b, err := parseLaunch("p:pinger:target=x,count=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	// Unparseable numbers fall back to defaults rather than failing.
	if p := b.(*behaviors.Pinger); p.Count != 5 {
		t.Fatalf("count = %d, want default 5", p.Count)
	}
}
