package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"naplet"
	"naplet/internal/behaviors"
	"naplet/internal/naming"
	"naplet/internal/obs"
)

// tracezDoc mirrors the /tracez?format=json payload.
type tracezDoc struct {
	Host    string              `json:"host"`
	Dropped uint64              `json:"dropped_spans"`
	Traces  []obs.TraceSnapshot `json:"traces"`
}

func fetchTracez(t *testing.T, addr, query string) tracezDoc {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/tracez?format=json" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez status = %d", resp.StatusCode)
	}
	var doc tracezDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /tracez: %v", err)
	}
	return doc
}

// TestTracezAcrossMigration is the tracing acceptance check: one live
// migration between two in-process nodes must yield a single trace ID whose
// merged span set — stitched from both hosts' /tracez endpoints — contains
// the suspend and transfer spans from the origin, the resume span from the
// destination, and the redirect span from the stationary peer, with
// monotonically consistent phase timings.
func TestTracezAcrossMigration(t *testing.T) {
	svc := naming.NewService()
	breg := naplet.NewRegistry()
	behaviors.RegisterAll(breg)

	newNode := func(name string) (*naplet.Node, string) {
		met := obs.NewRegistry()
		node, err := naplet.NewNode(naplet.Config{
			Name:      name,
			Directory: naming.Local{Svc: svc},
			Registry:  breg,
			Metrics:   met,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		srv, addr, err := startDebugServer("127.0.0.1:0", node, met, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return node, addr
	}
	n1, addr1 := newNode("h1")
	n2, addr2 := newNode("h2")

	if err := n1.Launch("echoer", &behaviors.Echo{}); err != nil {
		t.Fatal(err)
	}
	// The walker starts on h2 and hops to h1's dock while holding one
	// connection to the echoer (which stays on h1): the migration's origin
	// spans land on h2, its arrival spans and the stationary peer's
	// redirect span on h1.
	if err := n2.Launch("walker", &behaviors.Roamer{
		Target:     "echoer",
		Docks:      []string{n1.DockAddr(), n2.DockAddr()},
		MsgsPerHop: 1,
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		if _, err := svc.Lookup(ctx, "walker"); errors.Is(err, naming.ErrNotFound) {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("walker never finished")
		case <-time.After(5 * time.Millisecond):
		}
	}

	doc1 := fetchTracez(t, addr1, "")
	doc2 := fetchTracez(t, addr2, "")
	if doc1.Host != "h1" || doc2.Host != "h2" {
		t.Fatalf("tracez hosts = %q / %q", doc1.Host, doc2.Host)
	}

	// Merge the two per-host views by trace id.
	type merged struct {
		spans []obs.SpanRecord
		roots []string
	}
	byID := make(map[string]*merged)
	for _, doc := range []tracezDoc{doc1, doc2} {
		for _, ts := range doc.Traces {
			m := byID[ts.ID]
			if m == nil {
				m = &merged{}
				byID[ts.ID] = m
			}
			m.spans = append(m.spans, ts.Spans...)
			m.roots = append(m.roots, ts.Root)
		}
	}

	// Find the h2 -> h1 migration: a single trace id with suspend+transfer
	// spans recorded on h2 and resume+redirect spans recorded on h1.
	want := map[string]string{ // span name -> host it must have run on
		"suspend":  "h2",
		"transfer": "h2",
		"resume":   "h1",
		"redirect": "h1",
	}
	var hit *merged
	var hitID string
	for id, m := range byID {
		have := make(map[string]string)
		for _, sp := range m.spans {
			have[sp.Name] = sp.Host
		}
		ok := true
		for name, host := range want {
			if have[name] != host {
				ok = false
				break
			}
		}
		if ok {
			hit, hitID = m, id
			break
		}
	}
	if hit == nil {
		var ids []string
		for id, m := range byID {
			names := make([]string, 0, len(m.spans))
			for _, sp := range m.spans {
				names = append(names, sp.Host+":"+sp.Name)
			}
			ids = append(ids, id+" ["+strings.Join(names, " ")+"]")
		}
		t.Fatalf("no single trace holds suspend/transfer on h2 and resume/redirect on h1; traces:\n%s",
			strings.Join(ids, "\n"))
	}
	t.Logf("migration trace %s: %d merged spans", hitID, len(hit.spans))

	spanBy := func(name string) obs.SpanRecord {
		t.Helper()
		for _, sp := range hit.spans {
			if sp.Name == name {
				return sp
			}
		}
		t.Fatalf("trace %s missing span %q", hitID, name)
		return obs.SpanRecord{}
	}

	// Monotonic consistency: no span ends before it starts, and the
	// migration's phases begin in causal order — suspend before the state
	// transfer, the transfer before the destination's resume.
	for _, sp := range hit.spans {
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s on %s ends before it starts (%v .. %v)", sp.Name, sp.Host, sp.Start, sp.End)
		}
	}
	sus, xfer, res := spanBy("suspend"), spanBy("transfer"), spanBy("resume")
	if sus.Start.After(xfer.Start) {
		t.Errorf("suspend (%v) starts after transfer (%v)", sus.Start, xfer.Start)
	}
	if xfer.Start.After(res.Start) {
		t.Errorf("transfer (%v) starts after resume (%v)", xfer.Start, res.Start)
	}

	// The migrate root span lives on the origin and the depart/arrive pair
	// tie the two hosts' span trees together.
	foundRoot := false
	for _, r := range hit.roots {
		if strings.HasPrefix(r, "migrate walker") || r == "depart" {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Errorf("trace roots = %v, want a migrate/depart root", hit.roots)
	}

	// Per-phase durations on each host's snapshot are internally
	// consistent: no phase outlasts the whole trace.
	for _, doc := range []tracezDoc{doc1, doc2} {
		for _, ts := range doc.Traces {
			if ts.ID != hitID {
				continue
			}
			for name, ms := range ts.Phases {
				if ms < 0 {
					t.Errorf("%s phase %q duration %vms < 0", doc.Host, name, ms)
				}
				if ms > ts.DurationMs+0.001 {
					t.Errorf("%s phase %q (%.3fms) outlasts trace (%.3fms)", doc.Host, name, ms, ts.DurationMs)
				}
			}
		}
	}

	// ?n= serves the slowest-N subset, and the text rendering works.
	top := fetchTracez(t, addr2, "&n=1")
	if len(top.Traces) != 1 {
		t.Errorf("/tracez?n=1 returned %d traces", len(top.Traces))
	}
	resp, err := http.Get("http://" + addr2 + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "trace ") || !strings.Contains(string(body), "phase ") {
		t.Errorf("/tracez text rendering:\n%s", body)
	}
}

// validatePromText is a minimal Prometheus text-format validator (the same
// grammar the obs package tests enforce): TYPE comments, legal metric
// names, quoted label values, float sample values.
func validatePromText(t *testing.T, text string) int {
	t.Helper()
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return true
	}
	samples := 0
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || f[1] != "TYPE" || !validName(f[2]) {
				t.Errorf("line %d: bad comment %q", ln+1, line)
			}
			continue
		}
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Errorf("line %d: unbalanced braces %q", ln+1, line)
				continue
			}
			name, labels, rest = rest[:i], rest[i+1:j], rest[j+1:]
		} else if i := strings.IndexByte(rest, ' '); i >= 0 {
			name, rest = rest[:i], rest[i:]
		}
		if !validName(name) {
			t.Errorf("line %d: bad metric name %q", ln+1, name)
			continue
		}
		if labels != "" {
			for _, pair := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Errorf("line %d: bad label %q", ln+1, pair)
				}
			}
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			t.Errorf("line %d: bad value in %q: %v", ln+1, line, err)
			continue
		}
		samples++
	}
	return samples
}

// TestMetricsPromFormat pins the Prometheus exposition endpoint: a live
// node's /metrics?format=prom output must pass the text-format validator
// and carry the expected content type, including a labeled build.info-style
// gauge.
func TestMetricsPromFormat(t *testing.T) {
	svc := naming.NewService()
	breg := naplet.NewRegistry()
	behaviors.RegisterAll(breg)
	met := obs.NewRegistry()
	met.Gauge(`build.info{commit="deadbeef",go="go-test"}`).Set(1)
	node, err := naplet.NewNode(naplet.Config{
		Name:      "h1",
		Directory: naming.Local{Svc: svc},
		Registry:  breg,
		Metrics:   met,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	srv, addr, err := startDebugServer("127.0.0.1:0", node, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Put some traffic through so histograms and counters are non-trivial.
	if err := node.Launch("echoer", &behaviors.Echo{}); err != nil {
		t.Fatal(err)
	}
	if err := node.Launch("pinger", &behaviors.Pinger{Target: "echoer", Count: 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for met.Counter("conn.opens").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinger never opened a connection")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=prom status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	n := validatePromText(t, text)
	if n == 0 {
		t.Fatalf("no samples in prom output:\n%s", text)
	}
	for _, want := range []string{
		"# TYPE conn_opens counter\nconn_opens 1\n",
		`build_info{commit="deadbeef",go="go-test"} 1`,
		"# TYPE build_info gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// The JSON rendering still answers without the format parameter.
	if snap := fetchMetrics(t, addr); snap.Counters["conn.opens"] != 1 {
		t.Errorf("JSON /metrics conn.opens = %d", snap.Counters["conn.opens"])
	}
}
