package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"naplet"
	"naplet/internal/obs"
)

// startDebugServer exposes the node's observability surface over HTTP:
//
//	/metrics  — the registry snapshot as JSON (counters, gauges, histograms)
//	/connz    — the per-connection state table (text, or JSON with ?format=json)
//	/debug/pprof/ — the standard net/http/pprof handlers
//
// It returns the running server and its bound address.
func startDebugServer(addr string, node *naplet.Node, reg *obs.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("debug listener: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/connz", func(w http.ResponseWriter, r *http.Request) {
		infos := node.Controller().ConnInfos()
		transports := node.Controller().TransportInfos()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Conns      any `json:"conns"`
				Transports any `json:"transports"`
			}{infos, transports})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d connections at %s\n\n", len(infos), time.Now().Format(time.RFC3339))
		fmt.Fprintf(w, "%-32s %-12s %-12s %-14s %8s %8s %8s %9s %9s %-32s\n",
			"ID", "LOCAL", "REMOTE", "STATE", "SENDSEQ", "RECVSEQ", "BUFMSGS", "BUFBYTES", "LOGBYTES", "TRANSPORT")
		for _, in := range infos {
			fmt.Fprintf(w, "%-32s %-12s %-12s %-14s %8d %8d %8d %9d %9d %-32s\n",
				in.ID, in.LocalAgent, in.RemoteAgent, in.State,
				in.NextSendSeq, in.LastEnqueued, in.RecvBufferedMsgs, in.RecvBufferedBytes, in.SendLogBytes,
				in.Transport)
		}
		fmt.Fprintf(w, "\n%d shared transports\n\n", len(transports))
		fmt.Fprintf(w, "%-32s %-12s %-22s %-8s %7s %-10s %-18s\n",
			"ID", "PEER", "ADDR", "ROLE", "STREAMS", "AGE", "STATE")
		for _, tr := range transports {
			role := "accept"
			if tr.Dialer {
				role = "dial"
			}
			fmt.Fprintf(w, "%-32s %-12s %-22s %-8s %7d %-10s %-18s\n",
				tr.ID, tr.PeerHost, tr.PeerAddr, role, tr.Streams,
				time.Since(tr.Opened).Round(time.Second), tr.State)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "napletd %s debug surface\n\n/metrics\n/connz (?format=json)\n/debug/pprof/\n", node.Name())
	})

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
