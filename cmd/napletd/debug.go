package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"naplet"
	"naplet/internal/naming/cluster"
	"naplet/internal/obs"
)

// startDebugServer exposes the node's observability surface over HTTP:
//
//	/metrics  — the registry snapshot as JSON, or Prometheus text
//	            exposition format with ?format=prom
//	/connz    — the per-connection state table (text, or JSON with
//	            ?format=json), including each shared transport's resume
//	            window, last-keepalive time, and flight-recorder events
//	/namez    — the naming control plane: hosted cluster shard replicas
//	            (role, term, leader, record counts, staleness) and the
//	            controller's location-cache hit rate (text, ?format=json)
//	/tracez   — recent migration/connection traces with per-phase
//	            durations (text, ?format=json, ?n=<k> for the k slowest)
//	/debug/pprof/ — the standard net/http/pprof handlers
//
// cnode is the naming cluster node hosted by this process, or nil when the
// host is not part of the naming control plane.
//
// It returns the running server and its bound address.
func startDebugServer(addr string, node *naplet.Node, reg *obs.Registry, cnode *cluster.Node) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("debug listener: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/connz", func(w http.ResponseWriter, r *http.Request) {
		infos := node.Controller().ConnInfos()
		transports := node.Controller().TransportInfos()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Conns      any `json:"conns"`
				Transports any `json:"transports"`
			}{infos, transports})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d connections at %s\n\n", len(infos), time.Now().Format(time.RFC3339))
		fmt.Fprintf(w, "%-32s %-12s %-12s %-14s %8s %8s %8s %9s %9s %-32s\n",
			"ID", "LOCAL", "REMOTE", "STATE", "SENDSEQ", "RECVSEQ", "BUFMSGS", "BUFBYTES", "LOGBYTES", "TRANSPORT")
		for _, in := range infos {
			fmt.Fprintf(w, "%-32s %-12s %-12s %-14s %8d %8d %8d %9d %9d %-32s\n",
				in.ID, in.LocalAgent, in.RemoteAgent, in.State,
				in.NextSendSeq, in.LastEnqueued, in.RecvBufferedMsgs, in.RecvBufferedBytes, in.SendLogBytes,
				in.Transport)
		}
		now := time.Now()
		fmt.Fprintf(w, "\n%d shared transports\n\n", len(transports))
		fmt.Fprintf(w, "%-32s %-12s %-22s %-8s %-6s %-10s %-24s %7s %8s %-10s %-18s %-15s %-10s\n",
			"ID", "PEER", "ADDR", "ROLE", "RELAY", "CIPHER", "LIMITS", "STREAMS", "RTT", "AGE", "STATE", "RESUME-DEADLINE", "LAST-KA")
		for _, tr := range transports {
			role := "accept"
			if tr.Dialer {
				role = "dial"
			}
			via := "-"
			if tr.Relayed {
				via = "relay"
			}
			rtt := "-"
			if tr.RTT > 0 {
				rtt = tr.RTT.Round(100 * time.Microsecond).String()
			}
			deadline, lastKA := "-", "-"
			if !tr.ResumeDeadline.IsZero() {
				deadline = tr.ResumeDeadline.Sub(now).Round(time.Millisecond).String()
			}
			if !tr.LastKeepalive.IsZero() {
				lastKA = now.Sub(tr.LastKeepalive).Round(time.Millisecond).String() + " ago"
			}
			limits := fmt.Sprintf("p%d/w%d/a%d/ka%dms",
				tr.Limits.MaxPayload, tr.Limits.InitialWindow, tr.Limits.AckFrames, tr.Limits.KeepaliveMs)
			fmt.Fprintf(w, "%-32s %-12s %-22s %-8s %-6s %-10s %-24s %7d %8s %-10s %-18s %-15s %-10s\n",
				tr.ID, tr.PeerHost, tr.PeerAddr, role, via, tr.Cipher, limits, tr.Streams, rtt,
				time.Since(tr.Opened).Round(time.Second), tr.State, deadline, lastKA)
			for _, ev := range tr.Events {
				fmt.Fprintf(w, "    %s %-18s %s\n", ev.At.Format("15:04:05.000"), ev.Kind, ev.Detail)
			}
		}
	})
	mux.HandleFunc("/namez", func(w http.ResponseWriter, r *http.Request) {
		var shards []cluster.ShardInfo
		if cnode != nil {
			shards = cnode.Infos()
		}
		cacheStats, cacheOn := node.Controller().LocationCacheStats()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Shards        any  `json:"shards"`
				CacheEnabled  bool `json:"cache_enabled"`
				LocationCache any  `json:"location_cache"`
			}{shards, cacheOn, cacheStats})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cnode == nil {
			fmt.Fprintf(w, "no naming cluster node hosted here at %s\n", time.Now().Format(time.RFC3339))
		} else {
			fmt.Fprintf(w, "%d naming shard replicas at %s\n\n", len(shards), time.Now().Format(time.RFC3339))
			fmt.Fprintf(w, "%-6s %-9s %6s %-22s %8s %9s %7s %9s %-32s\n",
				"SHARD", "ROLE", "TERM", "LEADER", "RECORDS", "MAXEPOCH", "SYNCED", "AGE-MS", "REPLICAS")
			for _, in := range shards {
				age := "-"
				if in.Role == "follower" {
					age = fmt.Sprintf("%.1f", in.Age)
				}
				fmt.Fprintf(w, "%-6d %-9s %6d %-22s %8d %9d %7t %9s %-32s\n",
					in.Shard, in.Role, in.Term, in.Leader,
					in.Records, in.MaxEpoch, in.Synced, age, strings.Join(in.Replicas, ","))
			}
		}
		fmt.Fprintf(w, "\nlocation cache")
		if !cacheOn {
			fmt.Fprintf(w, ": disabled\n")
			return
		}
		fmt.Fprintf(w, " (%d entries)\n\n", cacheStats.Entries)
		fmt.Fprintf(w, "%10s %10s %13s %10s %9s\n", "HITS", "MISSES", "INVALIDATIONS", "ADVANCES", "HIT-RATE")
		fmt.Fprintf(w, "%10d %10d %13d %10d %8.1f%%\n",
			cacheStats.Hits, cacheStats.Misses, cacheStats.Invalidations,
			cacheStats.Advances, cacheStats.HitRate*100)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		tr := node.Tracer()
		traces := tr.Snapshot()
		if nstr := r.URL.Query().Get("n"); nstr != "" {
			n, err := strconv.Atoi(nstr)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			traces = tr.Slowest(n)
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Host    string              `json:"host"`
				Dropped uint64              `json:"dropped_spans"`
				Traces  []obs.TraceSnapshot `json:"traces"`
			}{tr.Host(), tr.Dropped(), traces})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d traces on %s at %s (%d spans dropped)\n",
			len(traces), tr.Host(), time.Now().Format(time.RFC3339), tr.Dropped())
		for _, ts := range traces {
			fmt.Fprintf(w, "\ntrace %s  root=%s  start=%s  duration=%.3fms\n",
				ts.ID, ts.Root, ts.Start.Format("15:04:05.000000"), ts.DurationMs)
			phases := make([]string, 0, len(ts.Phases))
			for name := range ts.Phases {
				phases = append(phases, name)
			}
			sort.Strings(phases)
			for _, name := range phases {
				fmt.Fprintf(w, "  phase %-14s %10.3fms\n", name, ts.Phases[name])
			}
			for _, sp := range ts.Spans {
				fmt.Fprintf(w, "  span  %-14s %10.3fms  host=%s  [%s<-%s]\n",
					sp.Name, sp.DurationMs(), sp.Host, sp.SpanHex, sp.ParentHex)
				for _, note := range sp.Notes {
					fmt.Fprintf(w, "        note: %s\n", note)
				}
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "napletd %s debug surface\n\n/metrics (?format=prom)\n/connz (?format=json)\n/namez (?format=json)\n/tracez (?format=json&n=5)\n/debug/pprof/\n", node.Name())
	})

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
